//! Cross-source coverage: how much of the DoS ecosystem does each
//! observation infrastructure see?
//!
//! The paper is explicit that its two data sets complement each other but
//! jointly miss *unspoofed* direct attacks (footnote 4), and Section 8
//! calls for integrating further sources. Given a third data set — botnet
//! attack events inferred from C&C monitoring (`dosscope-botmon`) — this
//! module quantifies the blind spot: the share of botnet-driven attacks
//! whose targets never appear in the telescope or honeypot data, target
//! overlaps between all three sources, and the per-family breakdown.

use crate::store::EventStore;
use dosscope_botmon::{BotFamily, BotnetEvent};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Coverage statistics over the three sources.
#[derive(Debug, Clone)]
pub struct CoverageStats {
    /// Botnet (unspoofed direct) attack events.
    pub botnet_events: u64,
    /// Distinct botnet attack targets.
    pub botnet_targets: u64,
    /// Botnet targets also seen by the telescope (the victim was *also*
    /// hit by a randomly spoofed attack at some point).
    pub shared_with_telescope: u64,
    /// Botnet targets also seen by the honeypots.
    pub shared_with_honeypots: u64,
    /// Botnet targets invisible to both (the paper's blind spot).
    pub invisible_targets: u64,
    /// Botnet events whose window overlaps a spoofed/reflection event on
    /// the same target — multi-vector incidents across all three sources.
    pub multivector_events: u64,
    /// Events per family, descending.
    pub per_family: Vec<(BotFamily, u64)>,
}

impl CoverageStats {
    /// Analyze coverage of the botnet event set against the two primary
    /// sources.
    pub fn analyze(store: &EventStore, botnet: &[BotnetEvent]) -> CoverageStats {
        let tele_targets: HashSet<Ipv4Addr> =
            store.telescope().iter().map(|e| e.target).collect();
        let hp_targets: HashSet<Ipv4Addr> = store.honeypot().iter().map(|e| e.target).collect();

        let mut targets: HashSet<Ipv4Addr> = HashSet::new();
        let mut families: HashMap<BotFamily, u64> = HashMap::new();
        let mut multivector = 0u64;
        for e in botnet {
            targets.insert(e.target);
            *families.entry(e.family).or_default() += 1;
            // The store's per-victim history scans only the victim-id
            // column, so this no longer decodes every event per probe.
            let overlaps_primary = store
                .history(e.target)
                .iter()
                .any(|p| p.when.overlaps(&e.when));
            if overlaps_primary {
                multivector += 1;
            }
        }
        let shared_tele = targets.intersection(&tele_targets).count() as u64;
        let shared_hp = targets.intersection(&hp_targets).count() as u64;
        let invisible = targets
            .iter()
            .filter(|t| !tele_targets.contains(t) && !hp_targets.contains(t))
            .count() as u64;
        let mut per_family: Vec<(BotFamily, u64)> = families.into_iter().collect();
        per_family.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        CoverageStats {
            botnet_events: botnet.len() as u64,
            botnet_targets: targets.len() as u64,
            shared_with_telescope: shared_tele,
            shared_with_honeypots: shared_hp,
            invisible_targets: invisible,
            multivector_events: multivector,
            per_family,
        }
    }

    /// Share of botnet targets invisible to the paper's two data sets.
    pub fn invisible_share(&self) -> f64 {
        if self.botnet_targets == 0 {
            0.0
        } else {
            self.invisible_targets as f64 / self.botnet_targets as f64
        }
    }

    /// Render a short text report.
    pub fn render(&self) -> String {
        let mut s = format!(
            "Coverage (3rd source, C&C monitor): {} botnet events on {} targets; {} shared w/ telescope, {} w/ honeypots; {} ({:.0}%) invisible to both; {} multi-vector events\n",
            self.botnet_events,
            self.botnet_targets,
            self.shared_with_telescope,
            self.shared_with_honeypots,
            self.invisible_targets,
            100.0 * self.invisible_share(),
            self.multivector_events,
        );
        for (family, n) in &self.per_family {
            s.push_str(&format!("  {family:<12} {n} events\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosscope_botmon::{AttackMethod, BotnetId};
    use dosscope_types::{
        AttackEvent, AttackVector, PortSignature, ReflectionProtocol, SimTime, TimeRange,
        TransportProto,
    };

    fn tele(ip: &str, start: u64, end: u64) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(SimTime(start), SimTime(end)),
            vector: AttackVector::RandomlySpoofed {
                proto: TransportProto::Tcp,
                ports: PortSignature::Single(80),
            },
            packets: 100,
            bytes: 4000,
            intensity_pps: 1.0,
            distinct_sources: 10,
        }
    }

    fn hp(ip: &str, start: u64, end: u64) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(SimTime(start), SimTime(end)),
            vector: AttackVector::Reflection {
                protocol: ReflectionProtocol::Ntp,
            },
            packets: 500,
            bytes: 20_000,
            intensity_pps: 10.0,
            distinct_sources: 4,
        }
    }

    fn bot(ip: &str, start: u64, end: u64, family: BotFamily) -> BotnetEvent {
        BotnetEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(SimTime(start), SimTime(end)),
            botnet: BotnetId(1),
            family,
            method: AttackMethod::HttpFlood,
            port: 80,
            explicit_stop: true,
        }
    }

    #[test]
    fn blind_spot_measured() {
        let mut store = EventStore::new();
        store.ingest_telescope(vec![tele("10.0.0.1", 100, 500)]);
        store.ingest_honeypot(vec![hp("10.0.0.2", 100, 500)]);
        let botnet = vec![
            // Same target AND overlapping: multi-vector.
            bot("10.0.0.1", 200, 400, BotFamily::DirtJumper),
            // Same target as the honeypot set, later in time.
            bot("10.0.0.2", 9_000, 9_500, BotFamily::Mirai),
            // Invisible to both.
            bot("10.0.0.3", 100, 500, BotFamily::Mirai),
        ];
        let c = CoverageStats::analyze(&store, &botnet);
        assert_eq!(c.botnet_events, 3);
        assert_eq!(c.botnet_targets, 3);
        assert_eq!(c.shared_with_telescope, 1);
        assert_eq!(c.shared_with_honeypots, 1);
        assert_eq!(c.invisible_targets, 1);
        assert!((c.invisible_share() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(c.multivector_events, 1);
        assert_eq!(c.per_family[0], (BotFamily::Mirai, 2));
        assert!(c.render().contains("Mirai"));
    }

    #[test]
    fn empty_botnet_set() {
        let store = EventStore::new();
        let c = CoverageStats::analyze(&store, &[]);
        assert_eq!(c.invisible_share(), 0.0);
        assert_eq!(c.botnet_events, 0);
    }
}
