//! Typed report artifacts: one structure per table and figure of the
//! paper, each with a plain-text renderer. The benchmark harness prints
//! these rows; EXPERIMENTS.md records them against the published values.

use crate::enrich::Enricher;
use crate::timeseries::{mean_intensity, DailySeries};
use crate::webimpact::WebImpact;
use crate::Framework;
use dosscope_dns::Tld;
use dosscope_types::{
    CountryCode, Ecdf, EventSource, FrozenEcdf, ReflectionProtocol, TransportProto,
};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// Format a count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Row label ("Network Telescope", ...).
    pub source: String,
    /// Events, targets, /24s, /16s.
    pub summary: crate::store::SourceSummary,
    /// Unique origin ASNs over targets.
    pub asns: u64,
}

/// Table 1: the DoS attack events data set summary.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Telescope, honeypot and combined rows.
    pub rows: [Table1Row; 3],
}

impl Table1 {
    /// Build from a framework.
    pub fn build(fw: &Framework<'_>) -> Table1 {
        let enricher = Enricher::new(fw.geo, fw.asdb);
        // The summaries are O(1) reads of the store's ingest-time
        // aggregates, and the ASN counts walk each *distinct* victim
        // once (the store's victim bitset) instead of every event row —
        // the distinct-ASN set over distinct targets is the same set.
        let asn_count = |targets: &mut dyn Iterator<Item = std::net::Ipv4Addr>| {
            let mut set = HashSet::new();
            for target in targets {
                if let (_, Some(asn)) = enricher.lookup(target) {
                    set.insert(asn);
                }
            }
            set.len() as u64
        };
        let t = Table1Row {
            source: "Network Telescope".into(),
            summary: fw.store.summary(EventSource::Telescope),
            asns: asn_count(&mut fw.store.distinct_targets(EventSource::Telescope)),
        };
        let h = Table1Row {
            source: "Amplification Honeypot".into(),
            summary: fw.store.summary(EventSource::Honeypot),
            asns: asn_count(&mut fw.store.distinct_targets(EventSource::Honeypot)),
        };
        let c = Table1Row {
            source: "Combined".into(),
            summary: fw.store.summary_combined(),
            asns: asn_count(&mut fw.store.distinct_targets_combined()),
        };
        Table1 { rows: [t, h, c] }
    }

    /// Render as text.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "Table 1: DoS attack events data\nsource                   #events   #targets   #/24s   #/16s   #ASNs\n",
        );
        for r in &self.rows {
            let _ = writeln!(
                s,
                "{:<24} {:>8} {:>10} {:>7} {:>7} {:>7}",
                r.source,
                fmt_count(r.summary.events),
                fmt_count(r.summary.targets),
                fmt_count(r.summary.blocks24),
                fmt_count(r.summary.blocks16),
                fmt_count(r.asns),
            );
        }
        s
    }
}

/// Table 2: the active DNS data set summary.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Per-TLD rows: `(tld, sites, data points, est. bytes)`.
    pub rows: Vec<(Tld, u64, u64, u64)>,
}

impl Table2 {
    /// Build from the zone attached to the framework.
    pub fn build(fw: &Framework<'_>) -> Option<Table2> {
        let zone = fw.zone?;
        let rows = Tld::ALL
            .iter()
            .map(|&tld| {
                (
                    tld,
                    zone.domain_count_in(tld) as u64,
                    zone.data_points_in(tld),
                    zone.data_points_in(tld) * 24,
                )
            })
            .collect();
        Some(Table2 { rows })
    }

    /// Render as text.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "Table 2: Active DNS data set\nsource   #Web sites   #data points   size (bytes)\n",
        );
        let mut tot = (0u64, 0u64, 0u64);
        for (tld, sites, points, bytes) in &self.rows {
            let _ = writeln!(
                s,
                "{:<8} {:>10} {:>14} {:>14}",
                tld.to_string(),
                fmt_count(*sites),
                fmt_count(*points),
                fmt_count(*bytes)
            );
            tot = (tot.0 + sites, tot.1 + points, tot.2 + bytes);
        }
        let _ = writeln!(
            s,
            "{:<8} {:>10} {:>14} {:>14}",
            "Combined",
            fmt_count(tot.0),
            fmt_count(tot.1),
            fmt_count(tot.2)
        );
        s
    }
}

/// Table 3: Web sites per DPS provider.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// `(provider name, #web sites)` in catalog order.
    pub rows: Vec<(String, u64)>,
}

impl Table3 {
    /// Build from the DPS data set.
    pub fn build(fw: &Framework<'_>) -> Option<Table3> {
        let dps = fw.dps?;
        let rows = dps
            .providers()
            .iter()
            .map(|p| (p.name.clone(), dps.customer_count(p.id)))
            .collect();
        Some(Table3 { rows })
    }

    /// Render as text.
    pub fn render(&self) -> String {
        let mut s = String::from("Table 3: DDoS Protection Service use\nprovider       #Web sites\n");
        for (name, n) in &self.rows {
            let _ = writeln!(s, "{:<14} {:>10}", name, fmt_count(*n));
        }
        s
    }
}

/// Table 4: per-country target ranking, one panel per source.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// Telescope panel: `(country, #unique targets, share %)`, descending;
    /// includes an aggregated "Other" row at the end.
    pub telescope: Vec<(String, u64, f64)>,
    /// Honeypot panel.
    pub honeypot: Vec<(String, u64, f64)>,
    /// Full ranking (no Other aggregation) for rank queries, telescope.
    pub telescope_full: Vec<(CountryCode, u64)>,
    /// Same for the honeypot panel.
    pub honeypot_full: Vec<(CountryCode, u64)>,
}

/// One rendered country panel: (name, targets, share) rows plus the raw
/// per-country counts.
type PanelRows = (Vec<(String, u64, f64)>, Vec<(CountryCode, u64)>);

impl Table4 {
    /// Build from a framework (top-5 + Other, like the paper).
    pub fn build(fw: &Framework<'_>) -> Table4 {
        let enricher = Enricher::new(fw.geo, fw.asdb);
        // Countries are counted over the store's distinct-victim bitset:
        // one enrichment lookup per unique target, no per-event dedup.
        let panel = |targets: &mut dyn Iterator<Item = std::net::Ipv4Addr>| -> PanelRows {
            let mut counts: HashMap<CountryCode, u64> = HashMap::new();
            for target in targets {
                let (cc, _) = enricher.lookup(target);
                *counts.entry(cc).or_default() += 1;
            }
            let total: u64 = counts.values().sum();
            let mut full: Vec<(CountryCode, u64)> = counts.into_iter().collect();
            full.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let mut rows: Vec<(String, u64, f64)> = full
                .iter()
                .take(5)
                .map(|&(cc, n)| (cc.to_string(), n, 100.0 * n as f64 / total.max(1) as f64))
                .collect();
            let other: u64 = full.iter().skip(5).map(|&(_, n)| n).sum();
            rows.push((
                "Other".into(),
                other,
                100.0 * other as f64 / total.max(1) as f64,
            ));
            (rows, full)
        };
        let (telescope, telescope_full) =
            panel(&mut fw.store.distinct_targets(EventSource::Telescope));
        let (honeypot, honeypot_full) =
            panel(&mut fw.store.distinct_targets(EventSource::Honeypot));
        Table4 {
            telescope,
            honeypot,
            telescope_full,
            honeypot_full,
        }
    }

    /// 1-based rank of a country in a panel's full ranking.
    pub fn rank(full: &[(CountryCode, u64)], cc: CountryCode) -> Option<usize> {
        full.iter().position(|&(c, _)| c == cc).map(|i| i + 1)
    }

    /// Render both panels.
    pub fn render(&self) -> String {
        let mut s = String::from("Table 4: targeted IPs per country\n");
        for (label, rows) in [("(a) Telescope", &self.telescope), ("(b) Honeypot", &self.honeypot)]
        {
            let _ = writeln!(s, "{label}\ncountry   #targets      %");
            for (cc, n, pct) in rows {
                let _ = writeln!(s, "{:<9} {:>8} {:>6.2}%", cc, fmt_count(*n), pct);
            }
        }
        s
    }
}

/// Table 5: IP protocol distribution of randomly spoofed attacks.
#[derive(Debug, Clone)]
pub struct Table5 {
    /// Shares per protocol in [`TransportProto::ALL`] order (%).
    pub shares: [f64; 4],
    /// Raw counts.
    pub counts: [u64; 4],
}

impl Table5 {
    /// Build over telescope events — pure posting-list arithmetic on the
    /// kind index: the transport is `kind / 3`, so each protocol's count
    /// is the sum of its three signature-class runs.
    pub fn build(fw: &Framework<'_>) -> Table5 {
        let idx = fw.store.kind_index(EventSource::Telescope);
        let counts: [u64; 4] =
            core::array::from_fn(|p| (0..3).map(|class| idx.count((p * 3 + class) as u8)).sum());
        let total: u64 = counts.iter().sum();
        let shares =
            core::array::from_fn(|i| 100.0 * counts[i] as f64 / total.max(1) as f64);
        Table5 { shares, counts }
    }

    /// Render as text.
    pub fn render(&self) -> String {
        let mut s = String::from("Table 5: IP protocol distribution (telescope)\n");
        for (i, p) in TransportProto::ALL.iter().enumerate() {
            let _ = writeln!(s, "{:<6} {:>6.1}%", p.to_string(), self.shares[i]);
        }
        s
    }
}

/// Table 6: reflection protocol distribution.
#[derive(Debug, Clone)]
pub struct Table6 {
    /// `(protocol, events, share %)` descending, top-5 + Other.
    pub rows: Vec<(String, u64, f64)>,
    /// Full per-protocol counts.
    pub counts: HashMap<ReflectionProtocol, u64>,
}

impl Table6 {
    /// Build over honeypot events — the reflection protocol *is* the
    /// kind code, so every count is one posting-list length.
    pub fn build(fw: &Framework<'_>) -> Table6 {
        let idx = fw.store.kind_index(EventSource::Honeypot);
        let mut counts: HashMap<ReflectionProtocol, u64> = HashMap::new();
        for p in ReflectionProtocol::ALL {
            let n = idx.count(crate::store::KIND_REFLECTION + p as u8);
            if n > 0 {
                counts.insert(p, n);
            }
        }
        let total: u64 = counts.values().sum();
        let mut sorted: Vec<(ReflectionProtocol, u64)> =
            counts.iter().map(|(&p, &n)| (p, n)).collect();
        // Tie-break on the protocol itself: HashMap iteration order is
        // not deterministic across instances.
        sorted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut rows: Vec<(String, u64, f64)> = sorted
            .iter()
            .take(5)
            .map(|&(p, n)| (p.to_string(), n, 100.0 * n as f64 / total.max(1) as f64))
            .collect();
        let other: u64 = sorted.iter().skip(5).map(|&(_, n)| n).sum();
        rows.push((
            "Other".into(),
            other,
            100.0 * other as f64 / total.max(1) as f64,
        ));
        Table6 { rows, counts }
    }

    /// Render as text.
    pub fn render(&self) -> String {
        let mut s = String::from("Table 6: reflection protocol distribution (honeypots)\ntype     #events      %\n");
        for (p, n, pct) in &self.rows {
            let _ = writeln!(s, "{:<8} {:>8} {:>6.2}%", p, fmt_count(*n), pct);
        }
        s
    }
}

/// Table 7: single- vs multi-port randomly spoofed attacks.
#[derive(Debug, Clone, Copy)]
pub struct Table7 {
    /// Events that targeted one port (or carry no port info).
    pub single: u64,
    /// Events that targeted multiple ports.
    pub multi: u64,
}

impl Table7 {
    /// Build over telescope events: signature-class run lengths summed
    /// across transports (class 0 = single port, 2 = no port info — both
    /// count as single, like [`PortSignature::is_single`]).
    pub fn build(fw: &Framework<'_>) -> Table7 {
        let idx = fw.store.kind_index(EventSource::Telescope);
        let class_total =
            |class: usize| (0..4).map(|p| idx.count((p * 3 + class) as u8)).sum::<u64>();
        Table7 {
            single: class_total(0) + class_total(2),
            multi: class_total(1),
        }
    }

    /// Single-port share (60.6 % in the paper).
    pub fn single_share(&self) -> f64 {
        let total = self.single + self.multi;
        if total == 0 {
            0.0
        } else {
            self.single as f64 / total as f64
        }
    }

    /// Render as text.
    pub fn render(&self) -> String {
        format!(
            "Table 7: target port cardinality (telescope)\nsingle-port {:>8} {:>5.1}%\nmulti-port  {:>8} {:>5.1}%\n",
            fmt_count(self.single),
            100.0 * self.single_share(),
            fmt_count(self.multi),
            100.0 * (1.0 - self.single_share()),
        )
    }
}

/// Table 8: top targeted services for single-port attacks, per transport.
#[derive(Debug, Clone)]
pub struct Table8 {
    /// TCP panel: `(service, events, share %)` top-5 + Other.
    pub tcp: Vec<(String, u64, f64)>,
    /// UDP panel.
    pub udp: Vec<(String, u64, f64)>,
}

impl Table8 {
    /// Build over single-port telescope events: the single-port run of
    /// each transport drives a gather over the `aux` (port) column.
    pub fn build(fw: &Framework<'_>) -> Table8 {
        let idx = fw.store.kind_index(EventSource::Telescope);
        let block = fw.store.block(EventSource::Telescope);
        let panel = |proto: TransportProto| -> Vec<(String, u64, f64)> {
            let mut counts: HashMap<u16, u64> = HashMap::new();
            for &row in idx.rows((proto.index() * 3) as u8) {
                *counts.entry(block.aux[row as usize] as u16).or_default() += 1;
            }
            let total: u64 = counts.values().sum();
            let mut sorted: Vec<(u16, u64)> = counts.into_iter().collect();
            sorted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let mut rows: Vec<(String, u64, f64)> = sorted
                .iter()
                .take(5)
                .map(|&(port, n)| {
                    (
                        dosscope_types::service::Service::classify(proto, port).to_string(),
                        n,
                        100.0 * n as f64 / total.max(1) as f64,
                    )
                })
                .collect();
            let other: u64 = sorted.iter().skip(5).map(|&(_, n)| n).sum();
            rows.push((
                "Other".into(),
                other,
                100.0 * other as f64 / total.max(1) as f64,
            ));
            rows
        };
        Table8 {
            tcp: panel(TransportProto::Tcp),
            udp: panel(TransportProto::Udp),
        }
    }

    /// Share of Web services (HTTP+HTTPS) in the TCP panel (69.36 % in the
    /// paper over all single-port TCP attacks).
    pub fn tcp_web_share(&self) -> f64 {
        self.tcp
            .iter()
            .filter(|(name, _, _)| name == "HTTP" || name == "HTTPS")
            .map(|(_, _, pct)| pct / 100.0)
            .sum()
    }

    /// Render both panels.
    pub fn render(&self) -> String {
        let mut s = String::from("Table 8: top targeted services, single-port attacks (telescope)\n");
        for (label, rows) in [("(a) TCP", &self.tcp), ("(b) UDP", &self.udp)] {
            let _ = writeln!(s, "{label}\ntype       #events      %");
            for (name, n, pct) in rows {
                let _ = writeln!(s, "{:<10} {:>8} {:>6.2}%", name, fmt_count(*n), pct);
            }
        }
        s
    }
}

/// Figure 2/3/4 data: empirical distribution of durations or intensities.
#[derive(Debug)]
pub struct DistributionFigure {
    /// Figure label.
    pub label: String,
    /// The distribution.
    pub ecdf: FrozenEcdf,
}

impl DistributionFigure {
    /// Duration distribution of one source (Figure 2 panel) — a fused
    /// sequential scan of the start and end time columns.
    pub fn durations(fw: &Framework<'_>, source: EventSource) -> DistributionFigure {
        let block = fw.store.block(source);
        let ecdf: Ecdf = block
            .start
            .iter()
            .zip(&block.end)
            .map(|(&s, &e)| (e - s) as f64)
            .collect();
        DistributionFigure {
            label: format!("Figure 2 ({source}) attack duration CDF"),
            ecdf: ecdf.freeze(),
        }
    }

    /// Intensity distribution of one source (Figures 3 and 4-overall) —
    /// the intensity column verbatim.
    pub fn intensities(fw: &Framework<'_>, source: EventSource) -> DistributionFigure {
        let ecdf: Ecdf = fw.store.block(source).intensity.iter().copied().collect();
        DistributionFigure {
            label: format!("intensity CDF ({source})"),
            ecdf: ecdf.freeze(),
        }
    }

    /// Per-protocol honeypot intensity distributions (Figure 4 curves):
    /// each curve gathers the intensity column along one protocol's
    /// posting list instead of re-filtering every honeypot event.
    pub fn intensities_per_protocol(
        fw: &Framework<'_>,
    ) -> Vec<(ReflectionProtocol, FrozenEcdf)> {
        let idx = fw.store.kind_index(EventSource::Honeypot);
        let block = fw.store.block(EventSource::Honeypot);
        ReflectionProtocol::TOP5
            .iter()
            .map(|&p| {
                let ecdf: Ecdf = idx
                    .rows(crate::store::KIND_REFLECTION + p as u8)
                    .iter()
                    .map(|&row| block.intensity[row as usize])
                    .collect();
                (p, ecdf.freeze())
            })
            .collect()
    }

    /// Render the CDF at the given thresholds.
    pub fn render(&self, thresholds: &[f64]) -> String {
        let mut s = format!("{} (n={})\n", self.label, self.ecdf.len());
        for (x, f) in self.ecdf.curve(thresholds) {
            let _ = writeln!(s, "  <= {:>10.1}: {:>5.1}%", x, 100.0 * f);
        }
        let _ = writeln!(
            s,
            "  mean {:.1}  median {:.1}",
            self.ecdf.mean().unwrap_or(0.0),
            self.ecdf.median().unwrap_or(0.0)
        );
        s
    }
}

/// Figure 1: the three daily-activity panels.
pub struct Figure1 {
    /// Telescope panel.
    pub telescope: DailySeries,
    /// Honeypot panel.
    pub honeypot: DailySeries,
    /// Combined panel.
    pub combined: DailySeries,
}

impl Figure1 {
    /// Build all three panels.
    pub fn build(fw: &Framework<'_>) -> Figure1 {
        let enricher = Enricher::new(fw.geo, fw.asdb);
        Figure1 {
            telescope: DailySeries::build(
                fw.store.telescope().iter(),
                &enricher,
                fw.days,
                |_| true,
            ),
            honeypot: DailySeries::build(fw.store.honeypot().iter(), &enricher, fw.days, |_| true),
            combined: DailySeries::build(fw.store.all(), &enricher, fw.days, |_| true),
        }
    }

    /// Render the headline daily means.
    pub fn render(&self) -> String {
        format!(
            "Figure 1: daily attacks (mean/day) — telescope {:.1}, honeypot {:.1}, combined {:.1}\n",
            self.telescope.mean_daily_attacks(),
            self.honeypot.mean_daily_attacks(),
            self.combined.mean_daily_attacks(),
        )
    }
}

/// Figure 5: medium-or-higher-intensity attacks per day (combined).
pub struct Figure5 {
    /// The filtered combined series.
    pub series: DailySeries,
}

impl Figure5 {
    /// Build using the per-source mean-intensity cutoffs.
    pub fn build(fw: &Framework<'_>) -> Figure5 {
        let enricher = Enricher::new(fw.geo, fw.asdb);
        let tele_cutoff = mean_intensity(fw.store.telescope().iter());
        let hp_cutoff = mean_intensity(fw.store.honeypot().iter());
        let series = DailySeries::build(fw.store.all(), &enricher, fw.days, |e| {
            match e.source() {
                EventSource::Telescope => e.intensity_pps >= tele_cutoff,
                EventSource::Honeypot => e.intensity_pps >= hp_cutoff,
            }
        });
        Figure5 { series }
    }

    /// Render the headline mean.
    pub fn render(&self) -> String {
        format!(
            "Figure 5: medium+ intensity attacks, mean {:.1}/day\n",
            self.series.mean_daily_attacks()
        )
    }
}

/// Figure 6/7 rendering helpers live on [`WebImpact`]; this renders them.
pub fn render_web_impact(web: &WebImpact) -> String {
    let mut s = String::from("Figure 6: co-hosting groups of attacked IPs\n");
    for (label, count) in web.cohosting.labels().iter().zip(web.cohosting.bins()) {
        let _ = writeln!(s, "  {:<14} {:>8}", label, fmt_count(*count));
    }
    let (mean, frac) = web.mean_daily_sites();
    let (peak_day, peak_frac) = web.peak_fraction();
    let _ = writeln!(
        s,
        "Figure 7: web sites on attacked IPs — {:.1}% of namespace over window; mean {:.0}/day ({:.2}%/day); peak {:.2}% on {}",
        100.0 * web.affected_fraction(),
        mean,
        100.0 * frac,
        100.0 * peak_frac,
        peak_day,
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventStore;
    use dosscope_geo::{AsDb, GeoDb};
    use dosscope_types::{Asn, AttackEvent, AttackVector, PortSignature, SimTime, TimeRange};

    fn tele(ip: &str, proto: TransportProto, ports: PortSignature, pps: f64) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(SimTime(100), SimTime(400)),
            vector: AttackVector::RandomlySpoofed { proto, ports },
            packets: 100,
            bytes: 4000,
            intensity_pps: pps,
            distinct_sources: 10,
        }
    }

    fn hp(ip: &str, protocol: ReflectionProtocol) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(SimTime(100), SimTime(400)),
            vector: AttackVector::Reflection { protocol },
            packets: 500,
            bytes: 20_000,
            intensity_pps: 10.0,
            distinct_sources: 4,
        }
    }

    fn dbs() -> (GeoDb, AsDb) {
        let mut geo = GeoDb::new();
        let mut asdb = AsDb::new();
        geo.insert("10.0.0.0/8".parse().unwrap(), CountryCode::new("US"));
        geo.insert("20.0.0.0/8".parse().unwrap(), CountryCode::new("CN"));
        asdb.insert("10.0.0.0/8".parse().unwrap(), Asn(1));
        asdb.insert("20.0.0.0/8".parse().unwrap(), Asn(2));
        (geo, asdb)
    }

    fn store() -> EventStore {
        let mut s = EventStore::new();
        s.ingest_telescope(vec![
            tele("10.0.0.1", TransportProto::Tcp, PortSignature::Single(80), 1.0),
            tele("10.0.0.2", TransportProto::Tcp, PortSignature::Single(443), 2.0),
            tele("10.0.0.3", TransportProto::Udp, PortSignature::Single(27015), 3.0),
            tele("20.0.0.1", TransportProto::Tcp, PortSignature::Multi(4), 4.0),
            tele("20.0.0.2", TransportProto::Icmp, PortSignature::None, 100.0),
        ]);
        s.ingest_honeypot(vec![
            hp("10.0.0.1", ReflectionProtocol::Ntp),
            hp("10.0.0.9", ReflectionProtocol::Ntp),
            hp("20.0.0.9", ReflectionProtocol::Dns),
        ]);
        s
    }

    #[test]
    fn table1_counts() {
        let (geo, asdb) = dbs();
        let store = store();
        let fw = Framework::new(&store, &geo, &asdb, 10);
        let t1 = Table1::build(&fw);
        assert_eq!(t1.rows[0].summary.events, 5);
        assert_eq!(t1.rows[1].summary.events, 3);
        assert_eq!(t1.rows[2].summary.events, 8);
        assert_eq!(t1.rows[2].summary.targets, 7, "10.0.0.1 shared");
        assert_eq!(t1.rows[0].asns, 2);
        assert!(t1.render().contains("Combined"));
    }

    #[test]
    fn table4_ranking() {
        let (geo, asdb) = dbs();
        let store = store();
        let fw = Framework::new(&store, &geo, &asdb, 10);
        let t4 = Table4::build(&fw);
        assert_eq!(t4.telescope[0].0, "US");
        assert_eq!(t4.telescope[0].1, 3);
        assert_eq!(
            Table4::rank(&t4.telescope_full, CountryCode::new("CN")),
            Some(2)
        );
        assert!(t4.render().contains("US"));
    }

    #[test]
    fn table5_shares() {
        let (geo, asdb) = dbs();
        let store = store();
        let fw = Framework::new(&store, &geo, &asdb, 10);
        let t5 = Table5::build(&fw);
        assert_eq!(t5.counts, [3, 1, 1, 0]);
        assert!((t5.shares[0] - 60.0).abs() < 1e-9);
    }

    #[test]
    fn table6_top5() {
        let (geo, asdb) = dbs();
        let store = store();
        let fw = Framework::new(&store, &geo, &asdb, 10);
        let t6 = Table6::build(&fw);
        assert_eq!(t6.rows[0].0, "NTP");
        assert_eq!(t6.rows[0].1, 2);
        assert!((t6.rows[0].2 - 66.66).abs() < 0.1);
    }

    #[test]
    fn table7_port_cardinality() {
        let (geo, asdb) = dbs();
        let store = store();
        let fw = Framework::new(&store, &geo, &asdb, 10);
        let t7 = Table7::build(&fw);
        // 3 single + 1 none (counted single) vs 1 multi.
        assert_eq!(t7.single, 4);
        assert_eq!(t7.multi, 1);
        assert!((t7.single_share() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn table8_services() {
        let (geo, asdb) = dbs();
        let store = store();
        let fw = Framework::new(&store, &geo, &asdb, 10);
        let t8 = Table8::build(&fw);
        let names: Vec<&str> = t8.tcp.iter().map(|(n, _, _)| n.as_str()).collect();
        assert!(names.contains(&"HTTP"));
        assert!(names.contains(&"HTTPS"));
        assert!((t8.tcp_web_share() - 1.0).abs() < 1e-9, "both TCP singles are web");
        assert_eq!(t8.udp[0].0, "27015");
    }

    #[test]
    fn figures_build() {
        let (geo, asdb) = dbs();
        let store = store();
        let fw = Framework::new(&store, &geo, &asdb, 10);
        let f1 = Figure1::build(&fw);
        assert_eq!(f1.combined.attacks.get(dosscope_types::DayIndex(0)), 8.0);
        let f2 = DistributionFigure::durations(&fw, EventSource::Telescope);
        assert_eq!(f2.ecdf.len(), 5);
        let f3 = DistributionFigure::intensities(&fw, EventSource::Telescope);
        assert_eq!(f3.ecdf.median(), Some(3.0));
        let f4 = DistributionFigure::intensities_per_protocol(&fw);
        assert_eq!(f4.len(), 5);
        assert_eq!(f4[0].1.len(), 2, "two NTP events");
        // Figure 5: only events at/above the per-source mean count.
        let f5 = Figure5::build(&fw);
        assert!(f5.series.attacks.total() >= 1.0);
        assert!(!f1.render().is_empty());
        assert!(!f5.render().is_empty());
    }

    #[test]
    fn fmt_count_separators() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1_000), "1,000");
        assert_eq!(fmt_count(12_470_000), "12,470,000");
    }
}
