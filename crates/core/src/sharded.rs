//! Sharded variants of the fusion layer on the persistent worker pool:
//! [`ShardedEventStore`] and [`ShardedFusion`].
//!
//! Events are routed by the target's /16 shard ([`shard_of`]), the same
//! key the parallel measurement pipelines use, and each shard's
//! accumulators live on a long-lived [`ShardPool`] worker. Queries run as
//! pool barriers — a closure visits every shard's state in place, after
//! all previously dispatched chunks — and merge exactly once into the
//! serial aggregates:
//!
//! * events, targets, /24s and /16s are additive — a /16 (and every /24
//!   inside it) lives wholly in one shard, so per-shard distinct counts
//!   never overlap;
//! * common and joint targets are target-local, hence additive too;
//! * ASNs are **not** additive (an AS spans /16s): the per-shard ASN sets
//!   are unioned;
//! * `last_day` is the maximum over shards.

use crate::store::{EventStore, SourceSummary};
use crate::streaming::{FusionState, StreamingSnapshot};
use dosscope_geo::AsDb;
use dosscope_types::{
    shard_of, AttackEvent, DayIndex, EventSource, FastMap, Routed, ShardPool, TimeSeries,
};
use std::collections::HashSet;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Bounded per-worker queue depth (see `dosscope_types::pool`).
const QUEUE_DEPTH: usize = 4;

/// Route a chunk of events by target shard, without copying any event.
/// Relative order within each shard is preserved, which is what the live
/// joint correlation and pruning depend on.
pub fn route_events(events: Arc<Vec<AttackEvent>>, shards: usize) -> Routed<AttackEvent> {
    let shards = shards.max(1);
    Routed::build(events, shards, |e| shard_of(e.target, shards))
}

fn add_summaries(a: SourceSummary, b: SourceSummary) -> SourceSummary {
    SourceSummary {
        events: a.events + b.events,
        targets: a.targets + b.targets,
        blocks24: a.blocks24 + b.blocks24,
        blocks16: a.blocks16 + b.blocks16,
    }
}

/// An event store split into target shards, one pool worker per shard;
/// aggregates merge additively at query barriers.
pub struct ShardedEventStore {
    pool: ShardPool<(EventSource, Routed<AttackEvent>), EventStore, EventStore>,
    shards: usize,
}

impl ShardedEventStore {
    /// A store with `shards` shards (0 is treated as 1).
    pub fn new(shards: usize) -> ShardedEventStore {
        let shards = shards.max(1);
        let pool = ShardPool::new(
            "store",
            shards,
            shards,
            QUEUE_DEPTH,
            |_| EventStore::new(),
            |store: &mut EventStore, shard, _shards, job: &(EventSource, Routed<AttackEvent>)| {
                // Zero-copy handoff: the worker encodes its shard's rows
                // straight from the routed chunk's borrowed events into
                // the shard store's columns — no event is ever cloned
                // (pinned by the `clone_audit` test).
                let (source, routed) = job;
                store.ingest_refs(*source, routed.owned(shard));
            },
            |store: EventStore| store,
        );
        ShardedEventStore { pool, shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Ingest telescope events: route by target, each shard sorts its own
    /// slice on its worker.
    pub fn ingest_telescope(&mut self, events: Vec<AttackEvent>) {
        self.ingest_with(EventSource::Telescope, events);
    }

    /// Ingest honeypot events, same scheme.
    pub fn ingest_honeypot(&mut self, events: Vec<AttackEvent>) {
        self.ingest_with(EventSource::Honeypot, events);
    }

    /// Cap every shard's pending-run count (see
    /// [`EventStore::set_run_threshold`]). A barrier, so it lands before
    /// any later ingest.
    pub fn set_run_threshold(&mut self, threshold: usize) {
        self.pool
            .barrier(move |s: &mut EventStore| s.set_run_threshold(threshold))
            .expect("configure on a collapsed store");
    }

    fn ingest_with(&mut self, source: EventSource, events: Vec<AttackEvent>) {
        let routed = route_events(Arc::new(events), self.shards);
        self.pool
            .dispatch((source, routed))
            .expect("ingest on a collapsed store");
    }

    /// Total event count over all shards.
    pub fn len(&mut self) -> usize {
        self.pool
            .barrier(|s: &mut EventStore| s.len())
            .expect("query on a collapsed store")
            .into_iter()
            .sum()
    }

    /// True when nothing was ingested.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// The Table 1 aggregate for one source, merged over shards.
    pub fn summary(&mut self, source: EventSource) -> SourceSummary {
        self.pool
            .barrier(move |s: &mut EventStore| s.summary(source))
            .expect("query on a collapsed store")
            .into_iter()
            .fold(SourceSummary::default(), add_summaries)
    }

    /// The Table 1 aggregate for the combined data, merged over shards.
    pub fn summary_combined(&mut self) -> SourceSummary {
        self.pool
            .barrier(|s: &mut EventStore| s.summary_combined())
            .expect("query on a collapsed store")
            .into_iter()
            .fold(SourceSummary::default(), add_summaries)
    }

    /// Unique targets common to both sources (target-local, so the
    /// per-shard intersections sum).
    pub fn common_targets(&mut self) -> u64 {
        self.pool
            .barrier(|s: &mut EventStore| s.common_targets())
            .expect("query on a collapsed store")
            .into_iter()
            .sum()
    }

    /// Collapse into one [`EventStore`] holding every event in the serial
    /// store's canonical order: a k-way merge over the shards' column
    /// blocks (each already `(start, target)`-sorted), not a re-ingest of
    /// cloned event vectors.
    pub fn into_store(mut self) -> EventStore {
        // Consolidate pending runs on the shard workers first: the
        // per-shard merges run in parallel, and the snapshot merge then
        // sees exactly one sorted block per shard.
        self.pool
            .barrier(|s: &mut EventStore| s.consolidate())
            .expect("store collapsed twice");
        let shards = self
            .pool
            .shutdown()
            .expect("store collapsed twice");
        EventStore::merge_shards(&shards)
    }
}

/// One fusion shard: its accumulators plus a worker-local AS memo (the
/// serial engine shares one mutex-guarded cache; a pool worker needs no
/// lock because a target's /16 — and hence every event for it — belongs
/// to exactly one shard).
struct FusionLane {
    state: FusionState,
    asdb: Arc<AsDb>,
    asn_memo: FastMap<Ipv4Addr, Option<u32>>,
}

impl FusionLane {
    fn push(&mut self, event: &AttackEvent) {
        let asdb = &self.asdb;
        let asn = *self
            .asn_memo
            .entry(event.target)
            .or_insert_with(|| asdb.asn_of(event.target).map(|a| a.0));
        self.state.push(event, asn);
    }
}

/// A streaming fusion engine split into target shards, one pool worker
/// per shard; a [`ShardedFusion::snapshot`] barrier merges the per-shard
/// accumulators into the exact serial [`StreamingSnapshot`].
///
/// Only the AS database is consulted during fusion (country enrichment
/// happens at report time), so that is all the engine takes.
pub struct ShardedFusion {
    pool: ShardPool<Routed<AttackEvent>, FusionLane, ()>,
    shards: usize,
}

impl ShardedFusion {
    /// A fusion engine with `shards` shards (0 is treated as 1) over the
    /// shared AS database, covering `days`.
    pub fn new(asdb: Arc<AsDb>, days: u32, shards: usize) -> ShardedFusion {
        let shards = shards.max(1);
        let pool = ShardPool::new(
            "fusion",
            shards,
            shards,
            QUEUE_DEPTH,
            move |_| FusionLane {
                state: FusionState::new(days),
                asdb: asdb.clone(),
                asn_memo: FastMap::default(),
            },
            |lane: &mut FusionLane, shard, _shards, routed: &Routed<AttackEvent>| {
                for e in routed.owned(shard) {
                    lane.push(e);
                }
            },
            |_| (),
        );
        ShardedFusion { pool, shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Route one event to its target's shard (only the owning worker is
    /// woken).
    pub fn push(&mut self, event: &AttackEvent) {
        let shard = shard_of(event.target, self.shards);
        let routed = route_events(Arc::new(vec![event.clone()]), self.shards);
        self.pool
            .dispatch_to(shard, routed)
            .expect("push on a poisoned engine");
    }

    /// Ingest a pre-routed chunk of events (as produced by
    /// [`route_events`] for this engine's shard count).
    pub fn push_routed(&mut self, routed: Routed<AttackEvent>) {
        assert_eq!(
            routed.shards(),
            self.shards,
            "chunk routed for a different shard count"
        );
        self.pool
            .dispatch(routed)
            .expect("push on a poisoned engine");
    }

    /// Route and ingest a chunk of events. Within a shard the original
    /// order is preserved, which is what the live joint correlation and
    /// pruning depend on.
    pub fn push_all(&mut self, events: &[AttackEvent]) {
        self.push_routed(route_events(Arc::new(events.to_vec()), self.shards));
    }

    /// The current fused state, merged once over shards (a barrier: runs
    /// after everything pushed so far).
    pub fn snapshot(&mut self) -> StreamingSnapshot {
        let _span = dosscope_obs::span!("fusion.join");
        let parts = self
            .pool
            .barrier(|lane: &mut FusionLane| {
                let asns: Vec<u32> = lane.state.combined_asn_set().iter().copied().collect();
                (lane.state.snapshot(), asns)
            })
            .expect("query on a poisoned engine");
        let mut asns: HashSet<u32> = HashSet::new();
        let mut merged = StreamingSnapshot {
            telescope: SourceSummary::default(),
            honeypot: SourceSummary::default(),
            combined_targets: 0,
            combined_events: 0,
            common_targets: 0,
            joint_targets: 0,
            asns: 0,
            last_day: None,
        };
        for (snap, shard_asns) in parts {
            merged.telescope = add_summaries(merged.telescope, snap.telescope);
            merged.honeypot = add_summaries(merged.honeypot, snap.honeypot);
            merged.combined_targets += snap.combined_targets;
            merged.combined_events += snap.combined_events;
            merged.common_targets += snap.common_targets;
            merged.joint_targets += snap.joint_targets;
            merged.last_day = match (merged.last_day, snap.last_day) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
            asns.extend(shard_asns);
        }
        merged.asns = asns.len() as u64;
        merged
    }

    /// Attacks per day, summed over shards.
    pub fn daily_attacks(&mut self) -> TimeSeries {
        let parts = self
            .pool
            .barrier(|lane: &mut FusionLane| lane.state.daily_attacks().values().to_vec())
            .expect("query on a poisoned engine");
        let days = parts.first().map(|v| v.len() as u32).unwrap_or(0);
        let mut merged = TimeSeries::zeros(days);
        for values in parts {
            for (i, v) in values.into_iter().enumerate() {
                merged.add(DayIndex(i as u32), v);
            }
        }
        merged
    }

    /// Unique targets on one day, summed over shards (targets are
    /// shard-disjoint).
    pub fn targets_on(&mut self, day: DayIndex) -> u64 {
        self.pool
            .barrier(move |lane: &mut FusionLane| lane.state.targets_on(day))
            .expect("query on a poisoned engine")
            .into_iter()
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streaming::StreamingFusion;
    use dosscope_geo::{AsDb, GeoDb};
    use dosscope_types::{
        AttackVector, PortSignature, ReflectionProtocol, SimTime, TimeRange, TransportProto,
    };

    fn tele(ip: &str, start: u64, end: u64) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(SimTime(start), SimTime(end)),
            vector: AttackVector::RandomlySpoofed {
                proto: TransportProto::Tcp,
                ports: PortSignature::Single(80),
            },
            packets: 100,
            bytes: 4000,
            intensity_pps: 1.0,
            distinct_sources: 10,
        }
    }

    fn hp(ip: &str, start: u64, end: u64) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(SimTime(start), SimTime(end)),
            vector: AttackVector::Reflection {
                protocol: ReflectionProtocol::Ntp,
            },
            packets: 500,
            bytes: 20_000,
            intensity_pps: 10.0,
            distinct_sources: 4,
        }
    }

    /// Events spread over many /16s with overlaps across sources.
    fn sample_events() -> (Vec<AttackEvent>, Vec<AttackEvent>) {
        let mut t = Vec::new();
        let mut h = Vec::new();
        for i in 0..40u64 {
            let ip = format!("10.{}.{}.7", i % 7, i % 5);
            t.push(tele(&ip, i * 500, i * 500 + 400));
            if i % 3 == 0 {
                // Same target, overlapping window: a joint incident.
                h.push(hp(&ip, i * 500 + 100, i * 500 + 300));
            }
            if i % 4 == 0 {
                h.push(hp(&format!("172.{}.0.9", 16 + i % 8), i * 500, i * 500 + 200));
            }
        }
        (t, h)
    }

    #[test]
    fn sharded_store_matches_serial() {
        let (t, h) = sample_events();
        let mut serial = EventStore::new();
        serial.ingest_telescope(t.clone());
        serial.ingest_honeypot(h.clone());
        for shards in [1, 2, 4, 8] {
            let mut sharded = ShardedEventStore::new(shards);
            sharded.ingest_telescope(t.clone());
            sharded.ingest_honeypot(h.clone());
            assert_eq!(sharded.len(), serial.len());
            assert_eq!(
                sharded.summary(EventSource::Telescope),
                serial.summary(EventSource::Telescope)
            );
            assert_eq!(
                sharded.summary(EventSource::Honeypot),
                serial.summary(EventSource::Honeypot)
            );
            assert_eq!(sharded.summary_combined(), serial.summary_combined());
            assert_eq!(sharded.common_targets(), serial.common_targets());
            let merged = sharded.into_store();
            assert_eq!(merged.telescope(), serial.telescope());
            assert_eq!(merged.honeypot(), serial.honeypot());
        }
    }

    #[test]
    fn sharded_fusion_matches_serial() {
        let (t, h) = sample_events();
        let mut all: Vec<AttackEvent> = t.into_iter().chain(h).collect();
        all.sort_by_key(|e| (e.when.start, e.target));
        let geo = GeoDb::new();
        let asdb = Arc::new(AsDb::new());
        let mut serial = StreamingFusion::new(&geo, &asdb, 731);
        for e in &all {
            serial.push(e);
        }
        let expect = serial.snapshot();
        for shards in [1, 2, 4, 8] {
            let mut sharded = ShardedFusion::new(asdb.clone(), 731, shards);
            sharded.push_all(&all);
            let snap = sharded.snapshot();
            assert_eq!(snap.telescope, expect.telescope, "{shards} shards");
            assert_eq!(snap.honeypot, expect.honeypot);
            assert_eq!(snap.combined_targets, expect.combined_targets);
            assert_eq!(snap.combined_events, expect.combined_events);
            assert_eq!(snap.common_targets, expect.common_targets);
            assert_eq!(snap.joint_targets, expect.joint_targets);
            assert_eq!(snap.asns, expect.asns);
            assert_eq!(snap.last_day, expect.last_day);
            assert_eq!(
                sharded.daily_attacks().values(),
                serial.daily_attacks().values()
            );
            assert_eq!(sharded.targets_on(DayIndex(0)), serial.targets_on(DayIndex(0)));
        }
    }

    #[test]
    fn incremental_push_equals_bulk_push_all() {
        let (t, h) = sample_events();
        let mut all: Vec<AttackEvent> = t.into_iter().chain(h).collect();
        all.sort_by_key(|e| (e.when.start, e.target));
        let asdb = Arc::new(AsDb::new());
        let mut one = ShardedFusion::new(asdb.clone(), 731, 4);
        let mut other = ShardedFusion::new(asdb, 731, 4);
        one.push_all(&all);
        for e in &all {
            other.push(e);
        }
        let (a, b) = (one.snapshot(), other.snapshot());
        assert_eq!(a.combined_events, b.combined_events);
        assert_eq!(a.joint_targets, b.joint_targets);
        assert_eq!(a.common_targets, b.common_targets);
    }

    #[test]
    fn snapshot_after_every_chunk_stays_consistent() {
        // Interleave ingestion and barriers: each snapshot must reflect
        // exactly the chunks dispatched before it.
        let (t, h) = sample_events();
        let mut all: Vec<AttackEvent> = t.into_iter().chain(h).collect();
        all.sort_by_key(|e| (e.when.start, e.target));
        let asdb = Arc::new(AsDb::new());
        let mut sharded = ShardedFusion::new(asdb.clone(), 731, 4);
        let geo = GeoDb::new();
        let mut serial = StreamingFusion::new(&geo, &asdb, 731);
        let mut pushed = 0u64;
        for chunk in all.chunks(7) {
            sharded.push_all(chunk);
            for e in chunk {
                serial.push(e);
            }
            pushed += chunk.len() as u64;
            let snap = sharded.snapshot();
            assert_eq!(snap.combined_events, pushed);
            assert_eq!(snap.joint_targets, serial.snapshot().joint_targets);
        }
    }
}
