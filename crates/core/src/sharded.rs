//! Sharded variants of the fusion layer: [`ShardedEventStore`] and
//! [`ShardedFusion`].
//!
//! Events are partitioned by the target's /16 shard ([`shard_of`]), the
//! same key the parallel measurement pipelines use, so per-shard
//! accumulators merge into exactly the serial aggregates:
//!
//! * events, targets, /24s and /16s are additive — a /16 (and every /24
//!   inside it) lives wholly in one shard, so per-shard distinct counts
//!   never overlap;
//! * common and joint targets are target-local, hence additive too;
//! * ASNs are **not** additive (an AS spans /16s): the per-shard ASN sets
//!   are unioned;
//! * `last_day` is the maximum over shards.

use crate::store::{EventStore, SourceSummary};
use crate::streaming::{StreamingFusion, StreamingSnapshot};
use dosscope_types::{shard_of, AttackEvent, DayIndex, EventSource, TimeSeries};
use std::collections::HashSet;

fn partition_events(events: Vec<AttackEvent>, shards: usize) -> Vec<Vec<AttackEvent>> {
    let mut parts: Vec<Vec<AttackEvent>> = (0..shards).map(|_| Vec::new()).collect();
    for e in events {
        let s = shard_of(e.target, shards);
        parts[s].push(e);
    }
    parts
}

fn add_summaries(a: SourceSummary, b: SourceSummary) -> SourceSummary {
    SourceSummary {
        events: a.events + b.events,
        targets: a.targets + b.targets,
        blocks24: a.blocks24 + b.blocks24,
        blocks16: a.blocks16 + b.blocks16,
    }
}

/// An event store split into target shards; aggregates merge additively.
#[derive(Debug)]
pub struct ShardedEventStore {
    shards: Vec<EventStore>,
}

impl ShardedEventStore {
    /// A store with `shards` shards (0 is treated as 1).
    pub fn new(shards: usize) -> ShardedEventStore {
        ShardedEventStore {
            shards: (0..shards.max(1)).map(|_| EventStore::new()).collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Ingest telescope events: partition by target, then sort per shard
    /// (in parallel for more than one shard).
    pub fn ingest_telescope(&mut self, events: Vec<AttackEvent>) {
        self.ingest_with(events, EventStore::ingest_telescope);
    }

    /// Ingest honeypot events, same scheme.
    pub fn ingest_honeypot(&mut self, events: Vec<AttackEvent>) {
        self.ingest_with(events, EventStore::ingest_honeypot);
    }

    fn ingest_with(&mut self, events: Vec<AttackEvent>, f: fn(&mut EventStore, Vec<AttackEvent>)) {
        let parts = partition_events(events, self.shards.len());
        if self.shards.len() == 1 {
            let [part] = <[_; 1]>::try_from(parts).expect("one shard");
            f(&mut self.shards[0], part);
            return;
        }
        std::thread::scope(|s| {
            for (store, part) in self.shards.iter_mut().zip(parts) {
                s.spawn(move || f(store, part));
            }
        });
    }

    /// Total event count over all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(EventStore::len).sum()
    }

    /// True when nothing was ingested.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The Table 1 aggregate for one source, merged over shards.
    pub fn summary(&self, source: EventSource) -> SourceSummary {
        self.shards
            .iter()
            .map(|s| s.summary(source))
            .fold(SourceSummary::default(), add_summaries)
    }

    /// The Table 1 aggregate for the combined data, merged over shards.
    pub fn summary_combined(&self) -> SourceSummary {
        self.shards
            .iter()
            .map(EventStore::summary_combined)
            .fold(SourceSummary::default(), add_summaries)
    }

    /// Unique targets common to both sources (target-local, so the
    /// per-shard intersections sum).
    pub fn common_targets(&self) -> u64 {
        self.shards.iter().map(EventStore::common_targets).sum()
    }

    /// Collapse into one [`EventStore`] holding every event in the serial
    /// store's canonical order.
    pub fn into_store(self) -> EventStore {
        let mut tele = Vec::new();
        let mut hp = Vec::new();
        for shard in self.shards {
            tele.extend(shard.telescope().to_vec());
            hp.extend(shard.honeypot().to_vec());
        }
        let mut store = EventStore::new();
        store.ingest_telescope(tele);
        store.ingest_honeypot(hp);
        store
    }
}

/// A streaming fusion engine split into target shards; a
/// [`ShardedFusion::snapshot`] merges the per-shard accumulators into the
/// exact serial [`StreamingSnapshot`].
pub struct ShardedFusion<'a> {
    shards: Vec<StreamingFusion<'a>>,
}

impl<'a> ShardedFusion<'a> {
    /// A fusion engine with `shards` shards (0 is treated as 1) over the
    /// shared metadata databases.
    pub fn new(
        geo: &'a dosscope_geo::GeoDb,
        asdb: &'a dosscope_geo::AsDb,
        days: u32,
        shards: usize,
    ) -> ShardedFusion<'a> {
        ShardedFusion {
            shards: (0..shards.max(1))
                .map(|_| StreamingFusion::new(geo, asdb, days))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Route one event to its target's shard.
    pub fn push(&mut self, event: &AttackEvent) {
        let s = shard_of(event.target, self.shards.len());
        self.shards[s].push(event);
    }

    /// Ingest a chunk of events, one worker thread per shard. Within a
    /// shard the original order is preserved, which is what the live
    /// joint correlation and pruning depend on.
    pub fn push_all(&mut self, events: &[AttackEvent]) {
        let n = self.shards.len();
        if n == 1 {
            for e in events {
                self.shards[0].push(e);
            }
            return;
        }
        let mut parts: Vec<Vec<&AttackEvent>> = (0..n).map(|_| Vec::new()).collect();
        for e in events {
            parts[shard_of(e.target, n)].push(e);
        }
        std::thread::scope(|s| {
            for (fusion, part) in self.shards.iter_mut().zip(parts) {
                s.spawn(move || {
                    for e in part {
                        fusion.push(e);
                    }
                });
            }
        });
    }

    /// The current fused state, merged over shards.
    pub fn snapshot(&self) -> StreamingSnapshot {
        let mut asns: HashSet<u32> = HashSet::new();
        let mut merged = StreamingSnapshot {
            telescope: SourceSummary::default(),
            honeypot: SourceSummary::default(),
            combined_targets: 0,
            combined_events: 0,
            common_targets: 0,
            joint_targets: 0,
            asns: 0,
            last_day: None,
        };
        for shard in &self.shards {
            let snap = shard.snapshot();
            merged.telescope = add_summaries(merged.telescope, snap.telescope);
            merged.honeypot = add_summaries(merged.honeypot, snap.honeypot);
            merged.combined_targets += snap.combined_targets;
            merged.combined_events += snap.combined_events;
            merged.common_targets += snap.common_targets;
            merged.joint_targets += snap.joint_targets;
            merged.last_day = match (merged.last_day, snap.last_day) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
            asns.extend(shard.combined_asn_set());
        }
        merged.asns = asns.len() as u64;
        merged
    }

    /// Attacks per day, summed over shards.
    pub fn daily_attacks(&self) -> TimeSeries {
        let days = self
            .shards
            .first()
            .map(|s| s.daily_attacks().days())
            .unwrap_or(0);
        let mut merged = TimeSeries::zeros(days);
        for shard in &self.shards {
            for (i, v) in shard.daily_attacks().values().iter().enumerate() {
                merged.add(DayIndex(i as u32), *v);
            }
        }
        merged
    }

    /// Unique targets on one day, summed over shards (targets are
    /// shard-disjoint).
    pub fn targets_on(&self, day: DayIndex) -> u64 {
        self.shards.iter().map(|s| s.targets_on(day)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosscope_geo::{AsDb, GeoDb};
    use dosscope_types::{
        AttackVector, PortSignature, ReflectionProtocol, SimTime, TimeRange, TransportProto,
    };

    fn tele(ip: &str, start: u64, end: u64) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(SimTime(start), SimTime(end)),
            vector: AttackVector::RandomlySpoofed {
                proto: TransportProto::Tcp,
                ports: PortSignature::Single(80),
            },
            packets: 100,
            bytes: 4000,
            intensity_pps: 1.0,
            distinct_sources: 10,
        }
    }

    fn hp(ip: &str, start: u64, end: u64) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(SimTime(start), SimTime(end)),
            vector: AttackVector::Reflection {
                protocol: ReflectionProtocol::Ntp,
            },
            packets: 500,
            bytes: 20_000,
            intensity_pps: 10.0,
            distinct_sources: 4,
        }
    }

    /// Events spread over many /16s with overlaps across sources.
    fn sample_events() -> (Vec<AttackEvent>, Vec<AttackEvent>) {
        let mut t = Vec::new();
        let mut h = Vec::new();
        for i in 0..40u64 {
            let ip = format!("10.{}.{}.7", i % 7, i % 5);
            t.push(tele(&ip, i * 500, i * 500 + 400));
            if i % 3 == 0 {
                // Same target, overlapping window: a joint incident.
                h.push(hp(&ip, i * 500 + 100, i * 500 + 300));
            }
            if i % 4 == 0 {
                h.push(hp(&format!("172.{}.0.9", 16 + i % 8), i * 500, i * 500 + 200));
            }
        }
        (t, h)
    }

    #[test]
    fn sharded_store_matches_serial() {
        let (t, h) = sample_events();
        let mut serial = EventStore::new();
        serial.ingest_telescope(t.clone());
        serial.ingest_honeypot(h.clone());
        for shards in [1, 2, 4, 8] {
            let mut sharded = ShardedEventStore::new(shards);
            sharded.ingest_telescope(t.clone());
            sharded.ingest_honeypot(h.clone());
            assert_eq!(sharded.len(), serial.len());
            assert_eq!(
                sharded.summary(EventSource::Telescope),
                serial.summary(EventSource::Telescope)
            );
            assert_eq!(
                sharded.summary(EventSource::Honeypot),
                serial.summary(EventSource::Honeypot)
            );
            assert_eq!(sharded.summary_combined(), serial.summary_combined());
            assert_eq!(sharded.common_targets(), serial.common_targets());
            let merged = sharded.into_store();
            assert_eq!(merged.telescope(), serial.telescope());
            assert_eq!(merged.honeypot(), serial.honeypot());
        }
    }

    #[test]
    fn sharded_fusion_matches_serial() {
        let (t, h) = sample_events();
        let mut all: Vec<AttackEvent> = t.into_iter().chain(h).collect();
        all.sort_by_key(|e| (e.when.start, e.target));
        let geo = GeoDb::new();
        let asdb = AsDb::new();
        let mut serial = StreamingFusion::new(&geo, &asdb, 731);
        for e in &all {
            serial.push(e);
        }
        let expect = serial.snapshot();
        for shards in [1, 2, 4, 8] {
            let mut sharded = ShardedFusion::new(&geo, &asdb, 731, shards);
            sharded.push_all(&all);
            let snap = sharded.snapshot();
            assert_eq!(snap.telescope, expect.telescope, "{shards} shards");
            assert_eq!(snap.honeypot, expect.honeypot);
            assert_eq!(snap.combined_targets, expect.combined_targets);
            assert_eq!(snap.combined_events, expect.combined_events);
            assert_eq!(snap.common_targets, expect.common_targets);
            assert_eq!(snap.joint_targets, expect.joint_targets);
            assert_eq!(snap.asns, expect.asns);
            assert_eq!(snap.last_day, expect.last_day);
            assert_eq!(
                sharded.daily_attacks().values(),
                serial.daily_attacks().values()
            );
            assert_eq!(sharded.targets_on(DayIndex(0)), serial.targets_on(DayIndex(0)));
        }
    }

    #[test]
    fn incremental_push_equals_bulk_push_all() {
        let (t, h) = sample_events();
        let mut all: Vec<AttackEvent> = t.into_iter().chain(h).collect();
        all.sort_by_key(|e| (e.when.start, e.target));
        let geo = GeoDb::new();
        let asdb = AsDb::new();
        let mut one = ShardedFusion::new(&geo, &asdb, 731, 4);
        let mut other = ShardedFusion::new(&geo, &asdb, 731, 4);
        one.push_all(&all);
        for e in &all {
            other.push(e);
        }
        let (a, b) = (one.snapshot(), other.snapshot());
        assert_eq!(a.combined_events, b.combined_events);
        assert_eq!(a.joint_targets, b.joint_targets);
        assert_eq!(a.common_targets, b.common_targets);
    }
}
