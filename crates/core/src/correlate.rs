//! Joint-attack correlation: targets hit by randomly spoofed attacks and
//! reflection attacks, and the characteristics of attacks used jointly
//! (end of Section 4).
//!
//! Two events form a *joint attack* when they come from different
//! measurement sources, hit the same target IP and overlap in time (e.g. a
//! SYN flood combined with an NTP reflection attack).

use crate::enrich::Enricher;
use crate::store::{EventStore, KIND_REFLECTION};
use dosscope_types::{
    Asn, CountryCode, EventSource, FastMap, FastSet, Interner, ReflectionProtocol, TransportProto,
};

/// The correlation results.
#[derive(Debug, Clone)]
pub struct JointStats {
    /// Targets appearing in both data sets, regardless of timing (282 k in
    /// the paper).
    pub common_targets: u64,
    /// Targets with at least one overlapping pair (137 k in the paper).
    pub joint_targets: u64,
    /// Number of overlapping event pairs.
    pub joint_pairs: u64,
    /// Share of single-port attacks among joint telescope events (77.1 %).
    pub single_port_share: f64,
    /// Share of HTTP among single-port TCP joint telescope events
    /// (50.23 %).
    pub tcp_http_share: f64,
    /// Share of 27015 among single-port UDP joint telescope events (53 %).
    pub udp_27015_share: f64,
    /// Reflection-protocol shares among joint honeypot events (NTP rises
    /// to 47 %, CharGen halves to 11.5 %).
    pub reflection_shares: Vec<(ReflectionProtocol, f64)>,
    /// Joint-target share per origin AS, descending (OVH 12.3 %, ...).
    pub top_asns: Vec<(Asn, f64)>,
    /// Joint-target share per country, descending (US 24.4 %, CN
    /// 20.4 %, ...).
    pub top_countries: Vec<(CountryCode, f64)>,
}

/// The correlation pass.
pub struct JointAnalysis;

impl JointAnalysis {
    /// Run the correlation over an event store.
    ///
    /// The whole pass is columnar: honeypot rows are bucketed by
    /// interned victim id (a `u32` key — the shared interner makes
    /// telescope and honeypot ids directly comparable), the telescope
    /// sweep walks the raw start/end columns, and the joint event sets
    /// are row-id sets — no event struct is ever materialized.
    pub fn run(store: &EventStore, enricher: &Enricher<'_>) -> JointStats {
        let tele = store.block(EventSource::Telescope);
        let hp = store.block(EventSource::Honeypot);

        // Honeypot postings per interned victim id.
        let mut hp_rows: FastMap<u32, Vec<u32>> = FastMap::default();
        for (row, &vid) in hp.victim.iter().enumerate() {
            hp_rows.entry(vid).or_default().push(row as u32);
        }

        let mut common: FastSet<u32> = FastSet::default();
        let mut joint_targets: FastSet<u32> = FastSet::default();
        let mut joint_pairs = 0u64;
        // Joint events, deduplicated by row id (one event can overlap
        // several events of the other source).
        let mut joint_tele_rows: Vec<u32> = Vec::new();
        let mut joint_hp_rows: Vec<u32> = Vec::new();
        let mut joint_hp_seen: FastSet<u32> = FastSet::default();

        for ti in 0..tele.len() {
            let vid = tele.victim[ti];
            let Some(rows) = hp_rows.get(&vid) else {
                continue;
            };
            common.insert(vid);
            let (ts, te) = (tele.start[ti], tele.end[ti]);
            let mut tele_is_joint = false;
            for &hi in rows {
                let hi = hi as usize;
                // Half-open interval overlap on the raw time columns.
                if ts < hp.end[hi] && hp.start[hi] < te {
                    joint_pairs += 1;
                    joint_targets.insert(vid);
                    tele_is_joint = true;
                    if joint_hp_seen.insert(hi as u32) {
                        joint_hp_rows.push(hi as u32);
                    }
                }
            }
            if tele_is_joint {
                joint_tele_rows.push(ti as u32);
            }
        }

        // Port-structure shifts among joint telescope events, read off
        // the flattened (kind, aux) columns: kind / 3 is the transport,
        // kind % 3 the signature class (0 single, 1 multi, 2 none).
        let mut single = 0u64;
        let mut tcp_single = 0u64;
        let mut tcp_http = 0u64;
        let mut udp_single = 0u64;
        let mut udp_steam = 0u64;
        let with_ports = joint_tele_rows.len() as u64;
        for &ti in &joint_tele_rows {
            let ti = ti as usize;
            let (kind, class) = (tele.kind[ti] / 3, tele.kind[ti] % 3);
            if class != 1 {
                single += 1;
            }
            if class == 0 {
                let port = tele.aux[ti];
                if kind as usize == TransportProto::Tcp.index() {
                    tcp_single += 1;
                    if port == 80 {
                        tcp_http += 1;
                    }
                } else if kind as usize == TransportProto::Udp.index() {
                    udp_single += 1;
                    if port == 27015 {
                        udp_steam += 1;
                    }
                }
            }
        }
        let share = |num: u64, den: u64| if den == 0 { 0.0 } else { num as f64 / den as f64 };

        // Reflection-protocol shift among joint honeypot events: the
        // kind code *is* the protocol, so a fixed-size count array does.
        let mut proto_counts = [0u64; ReflectionProtocol::ALL.len()];
        for &hi in &joint_hp_rows {
            proto_counts[(hp.kind[hi as usize] - KIND_REFLECTION) as usize] += 1;
        }
        let hp_total: u64 = proto_counts.iter().sum();
        let mut reflection_shares: Vec<(ReflectionProtocol, f64)> = ReflectionProtocol::ALL
            .iter()
            .map(|&p| (p, share(proto_counts[p as usize], hp_total)))
            .collect();
        reflection_shares
            .sort_by(|a, b| b.1.partial_cmp(&a.1).expect("shares are finite"));

        // Joint-target metadata shares: countries and ASNs are interned
        // to dense ids so the tally is a pair of count vectors.
        let mut asns: Interner<Asn> = Interner::new();
        let mut asn_counts: Vec<u64> = Vec::new();
        let mut countries: Interner<CountryCode> = Interner::new();
        let mut country_counts: Vec<u64> = Vec::new();
        for &vid in &joint_targets {
            let (country, asn) = enricher.lookup(store.victim_ids().resolve(vid));
            let cid = countries.intern(country) as usize;
            if cid == country_counts.len() {
                country_counts.push(0);
            }
            country_counts[cid] += 1;
            if let Some(a) = asn {
                let aid = asns.intern(a) as usize;
                if aid == asn_counts.len() {
                    asn_counts.push(0);
                }
                asn_counts[aid] += 1;
            }
        }
        let n_joint = joint_targets.len() as u64;
        let mut top_asns: Vec<(Asn, f64)> = asn_counts
            .iter()
            .enumerate()
            .map(|(id, &c)| (asns.resolve(id as u32), share(c, n_joint)))
            .collect();
        top_asns.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        let mut top_countries: Vec<(CountryCode, f64)> = country_counts
            .iter()
            .enumerate()
            .map(|(id, &c)| (countries.resolve(id as u32), share(c, n_joint)))
            .collect();
        top_countries.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));

        JointStats {
            common_targets: common.len() as u64,
            joint_targets: n_joint,
            joint_pairs,
            single_port_share: share(single, with_ports),
            tcp_http_share: share(tcp_http, tcp_single),
            udp_27015_share: share(udp_steam, udp_single),
            reflection_shares,
            top_asns,
            top_countries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosscope_geo::{AsDb, GeoDb};
    use dosscope_types::{AttackEvent, AttackVector, PortSignature, SimTime, TimeRange};

    fn tele(ip: &str, start: u64, end: u64, port: u16) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(SimTime(start), SimTime(end)),
            vector: AttackVector::RandomlySpoofed {
                proto: TransportProto::Tcp,
                ports: PortSignature::Single(port),
            },
            packets: 100,
            bytes: 4000,
            intensity_pps: 1.0,
            distinct_sources: 10,
        }
    }

    fn hp(ip: &str, start: u64, end: u64, protocol: ReflectionProtocol) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(SimTime(start), SimTime(end)),
            vector: AttackVector::Reflection { protocol },
            packets: 500,
            bytes: 20_000,
            intensity_pps: 10.0,
            distinct_sources: 4,
        }
    }

    fn run(tele_events: Vec<AttackEvent>, hp_events: Vec<AttackEvent>) -> JointStats {
        let mut store = EventStore::new();
        store.ingest_telescope(tele_events);
        store.ingest_honeypot(hp_events);
        let geo = GeoDb::new();
        let asdb = AsDb::new();
        let enricher = Enricher::new(&geo, &asdb);
        JointAnalysis::run(&store, &enricher)
    }

    #[test]
    fn detects_joint_attack() {
        let s = run(
            vec![tele("10.0.0.1", 100, 500, 80)],
            vec![hp("10.0.0.1", 300, 700, ReflectionProtocol::Ntp)],
        );
        assert_eq!(s.common_targets, 1);
        assert_eq!(s.joint_targets, 1);
        assert_eq!(s.joint_pairs, 1);
        assert_eq!(s.single_port_share, 1.0);
        assert_eq!(s.tcp_http_share, 1.0);
        assert_eq!(s.reflection_shares[0], (ReflectionProtocol::Ntp, 1.0));
    }

    #[test]
    fn common_but_not_simultaneous() {
        let s = run(
            vec![tele("10.0.0.1", 100, 200, 80)],
            vec![hp("10.0.0.1", 5_000, 6_000, ReflectionProtocol::Dns)],
        );
        assert_eq!(s.common_targets, 1);
        assert_eq!(s.joint_targets, 0);
        assert_eq!(s.joint_pairs, 0);
    }

    #[test]
    fn disjoint_targets_not_common() {
        let s = run(
            vec![tele("10.0.0.1", 100, 200, 80)],
            vec![hp("10.0.0.2", 100, 200, ReflectionProtocol::Dns)],
        );
        assert_eq!(s.common_targets, 0);
    }

    #[test]
    fn multiple_overlaps_count_target_once() {
        let s = run(
            vec![
                tele("10.0.0.1", 100, 1000, 80),
                tele("10.0.0.1", 2000, 3000, 443),
            ],
            vec![
                hp("10.0.0.1", 500, 2500, ReflectionProtocol::Ntp),
                hp("10.0.0.1", 900, 950, ReflectionProtocol::CharGen),
            ],
        );
        assert_eq!(s.joint_targets, 1);
        // tele1↔ntp, tele1↔chargen, tele2↔ntp.
        assert_eq!(s.joint_pairs, 3);
    }

    #[test]
    fn boundary_touch_is_not_joint() {
        let s = run(
            vec![tele("10.0.0.1", 100, 200, 80)],
            vec![hp("10.0.0.1", 200, 300, ReflectionProtocol::Ntp)],
        );
        assert_eq!(s.joint_targets, 0, "half-open intervals: touching ≠ overlap");
    }
}
