//! Joint-attack correlation: targets hit by randomly spoofed attacks and
//! reflection attacks, and the characteristics of attacks used jointly
//! (end of Section 4).
//!
//! Two events form a *joint attack* when they come from different
//! measurement sources, hit the same target IP and overlap in time (e.g. a
//! SYN flood combined with an NTP reflection attack).

use crate::enrich::Enricher;
use crate::store::EventStore;
use dosscope_types::{
    Asn, AttackEvent, CountryCode, PortSignature, ReflectionProtocol, TransportProto,
};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// The correlation results.
#[derive(Debug, Clone)]
pub struct JointStats {
    /// Targets appearing in both data sets, regardless of timing (282 k in
    /// the paper).
    pub common_targets: u64,
    /// Targets with at least one overlapping pair (137 k in the paper).
    pub joint_targets: u64,
    /// Number of overlapping event pairs.
    pub joint_pairs: u64,
    /// Share of single-port attacks among joint telescope events (77.1 %).
    pub single_port_share: f64,
    /// Share of HTTP among single-port TCP joint telescope events
    /// (50.23 %).
    pub tcp_http_share: f64,
    /// Share of 27015 among single-port UDP joint telescope events (53 %).
    pub udp_27015_share: f64,
    /// Reflection-protocol shares among joint honeypot events (NTP rises
    /// to 47 %, CharGen halves to 11.5 %).
    pub reflection_shares: Vec<(ReflectionProtocol, f64)>,
    /// Joint-target share per origin AS, descending (OVH 12.3 %, ...).
    pub top_asns: Vec<(Asn, f64)>,
    /// Joint-target share per country, descending (US 24.4 %, CN
    /// 20.4 %, ...).
    pub top_countries: Vec<(CountryCode, f64)>,
}

/// The correlation pass.
pub struct JointAnalysis;

impl JointAnalysis {
    /// Run the correlation over an event store.
    pub fn run(store: &EventStore, enricher: &Enricher<'_>) -> JointStats {
        // Index honeypot events per target for the sweep.
        let mut hp_by_target: HashMap<Ipv4Addr, Vec<&AttackEvent>> = HashMap::new();
        for e in store.honeypot() {
            hp_by_target.entry(e.target).or_default().push(e);
        }

        let mut common: HashSet<Ipv4Addr> = HashSet::new();
        let mut joint_targets: HashSet<Ipv4Addr> = HashSet::new();
        let mut joint_pairs = 0u64;
        // Joint telescope events, deduplicated (one event can overlap
        // several reflection events).
        let mut joint_tele: Vec<&AttackEvent> = Vec::new();
        let mut joint_tele_seen: HashSet<usize> = HashSet::new();
        let mut joint_hp: Vec<&AttackEvent> = Vec::new();
        let mut joint_hp_seen: HashSet<usize> = HashSet::new();

        for (ti, te) in store.telescope().iter().enumerate() {
            let Some(hps) = hp_by_target.get(&te.target) else {
                continue;
            };
            common.insert(te.target);
            for he in hps {
                if te.when.overlaps(&he.when) {
                    joint_pairs += 1;
                    joint_targets.insert(te.target);
                    if joint_tele_seen.insert(ti) {
                        joint_tele.push(te);
                    }
                    // Identity of the honeypot event via its address.
                    let key = *he as *const AttackEvent as usize;
                    if joint_hp_seen.insert(key) {
                        joint_hp.push(he);
                    }
                }
            }
        }

        // Port-structure shifts among joint telescope events.
        let mut single = 0u64;
        let mut tcp_single = 0u64;
        let mut tcp_http = 0u64;
        let mut udp_single = 0u64;
        let mut udp_steam = 0u64;
        let mut with_ports = 0u64;
        for e in &joint_tele {
            let Some(ports) = e.port_signature() else {
                continue;
            };
            with_ports += 1;
            if ports.is_single() {
                single += 1;
            }
            match (e.transport_proto(), ports) {
                (Some(TransportProto::Tcp), PortSignature::Single(p)) => {
                    tcp_single += 1;
                    if p == 80 {
                        tcp_http += 1;
                    }
                }
                (Some(TransportProto::Udp), PortSignature::Single(p)) => {
                    udp_single += 1;
                    if p == 27015 {
                        udp_steam += 1;
                    }
                }
                _ => {}
            }
        }
        let share = |num: u64, den: u64| if den == 0 { 0.0 } else { num as f64 / den as f64 };

        // Reflection-protocol shift among joint honeypot events.
        let mut proto_counts: HashMap<ReflectionProtocol, u64> = HashMap::new();
        for e in &joint_hp {
            if let Some(p) = e.reflection_protocol() {
                *proto_counts.entry(p).or_default() += 1;
            }
        }
        let hp_total: u64 = proto_counts.values().sum();
        let mut reflection_shares: Vec<(ReflectionProtocol, f64)> = ReflectionProtocol::ALL
            .iter()
            .map(|&p| (p, share(proto_counts.get(&p).copied().unwrap_or(0), hp_total)))
            .collect();
        reflection_shares
            .sort_by(|a, b| b.1.partial_cmp(&a.1).expect("shares are finite"));

        // Joint-target metadata shares.
        let mut asn_counts: HashMap<Asn, u64> = HashMap::new();
        let mut country_counts: HashMap<CountryCode, u64> = HashMap::new();
        for &target in &joint_targets {
            let (country, asn) = enricher.lookup(target);
            *country_counts.entry(country).or_default() += 1;
            if let Some(a) = asn {
                *asn_counts.entry(a).or_default() += 1;
            }
        }
        let n_joint = joint_targets.len() as u64;
        let mut top_asns: Vec<(Asn, f64)> = asn_counts
            .into_iter()
            .map(|(a, c)| (a, share(c, n_joint)))
            .collect();
        top_asns.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        let mut top_countries: Vec<(CountryCode, f64)> = country_counts
            .into_iter()
            .map(|(c, n)| (c, share(n, n_joint)))
            .collect();
        top_countries.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));

        JointStats {
            common_targets: common.len() as u64,
            joint_targets: n_joint,
            joint_pairs,
            single_port_share: share(single, with_ports),
            tcp_http_share: share(tcp_http, tcp_single),
            udp_27015_share: share(udp_steam, udp_single),
            reflection_shares,
            top_asns,
            top_countries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosscope_geo::{AsDb, GeoDb};
    use dosscope_types::{AttackVector, SimTime, TimeRange};

    fn tele(ip: &str, start: u64, end: u64, port: u16) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(SimTime(start), SimTime(end)),
            vector: AttackVector::RandomlySpoofed {
                proto: TransportProto::Tcp,
                ports: PortSignature::Single(port),
            },
            packets: 100,
            bytes: 4000,
            intensity_pps: 1.0,
            distinct_sources: 10,
        }
    }

    fn hp(ip: &str, start: u64, end: u64, protocol: ReflectionProtocol) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(SimTime(start), SimTime(end)),
            vector: AttackVector::Reflection { protocol },
            packets: 500,
            bytes: 20_000,
            intensity_pps: 10.0,
            distinct_sources: 4,
        }
    }

    fn run(tele_events: Vec<AttackEvent>, hp_events: Vec<AttackEvent>) -> JointStats {
        let mut store = EventStore::new();
        store.ingest_telescope(tele_events);
        store.ingest_honeypot(hp_events);
        let geo = GeoDb::new();
        let asdb = AsDb::new();
        let enricher = Enricher::new(&geo, &asdb);
        JointAnalysis::run(&store, &enricher)
    }

    #[test]
    fn detects_joint_attack() {
        let s = run(
            vec![tele("10.0.0.1", 100, 500, 80)],
            vec![hp("10.0.0.1", 300, 700, ReflectionProtocol::Ntp)],
        );
        assert_eq!(s.common_targets, 1);
        assert_eq!(s.joint_targets, 1);
        assert_eq!(s.joint_pairs, 1);
        assert_eq!(s.single_port_share, 1.0);
        assert_eq!(s.tcp_http_share, 1.0);
        assert_eq!(s.reflection_shares[0], (ReflectionProtocol::Ntp, 1.0));
    }

    #[test]
    fn common_but_not_simultaneous() {
        let s = run(
            vec![tele("10.0.0.1", 100, 200, 80)],
            vec![hp("10.0.0.1", 5_000, 6_000, ReflectionProtocol::Dns)],
        );
        assert_eq!(s.common_targets, 1);
        assert_eq!(s.joint_targets, 0);
        assert_eq!(s.joint_pairs, 0);
    }

    #[test]
    fn disjoint_targets_not_common() {
        let s = run(
            vec![tele("10.0.0.1", 100, 200, 80)],
            vec![hp("10.0.0.2", 100, 200, ReflectionProtocol::Dns)],
        );
        assert_eq!(s.common_targets, 0);
    }

    #[test]
    fn multiple_overlaps_count_target_once() {
        let s = run(
            vec![
                tele("10.0.0.1", 100, 1000, 80),
                tele("10.0.0.1", 2000, 3000, 443),
            ],
            vec![
                hp("10.0.0.1", 500, 2500, ReflectionProtocol::Ntp),
                hp("10.0.0.1", 900, 950, ReflectionProtocol::CharGen),
            ],
        );
        assert_eq!(s.joint_targets, 1);
        // tele1↔ntp, tele1↔chargen, tele2↔ntp.
        assert_eq!(s.joint_pairs, 3);
    }

    #[test]
    fn boundary_touch_is_not_joint() {
        let s = run(
            vec![tele("10.0.0.1", 100, 200, 80)],
            vec![hp("10.0.0.1", 200, 300, ReflectionProtocol::Ntp)],
        );
        assert_eq!(s.joint_targets, 0, "half-open intervals: touching ≠ overlap");
    }
}
