//! Attacks on shared DNS and mail infrastructure — the paper's Section 8
//! future work, implemented: map targeted IP addresses to the mail
//! exchangers (`MX` targets) and authoritative name servers of hosting
//! organisations, and measure how many domains' mail/DNS service was
//! potentially affected.
//!
//! The paper's motivation: "we find that GoDaddy's e-mail servers, which
//! are used by tens of millions of domain names, are frequently targeted
//! by DoS attacks", and "we could map targeted IP addresses to
//! authoritative name servers, and study the potential effect of attacks
//! on the DNS itself".

use crate::Framework;
use dosscope_types::{DayIndex, TimeSeries};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Impact on one class of shared infrastructure (mail or DNS).
pub struct InfraImpact {
    /// Attack events whose target was an infrastructure address.
    pub events: u64,
    /// Distinct infrastructure addresses attacked.
    pub targeted_ips: u64,
    /// Distinct domains whose service was potentially affected at least
    /// once.
    pub affected_domains: u64,
    /// Domains potentially affected per day.
    pub daily_domains: TimeSeries,
    /// Affected domains per operating organisation, descending.
    pub top_orgs: Vec<(String, u64)>,
}

/// The combined mail + name-server analysis.
pub struct InfrastructureImpact {
    /// Mail-exchanger impact.
    pub mail: InfraImpact,
    /// Authoritative-name-server impact.
    pub dns: InfraImpact,
}

impl InfrastructureImpact {
    /// Run the infrastructure join. Returns `None` when the framework has
    /// no DNS data attached.
    pub fn analyze(fw: &Framework<'_>) -> Option<InfrastructureImpact> {
        let zone = fw.zone?;
        let catalog = fw.catalog?;
        let days = fw.days;

        let mut mail = Accum::new(days);
        let mut dns = Accum::new(days);

        for e in fw.store.all() {
            let day = e.when.start.day();
            if day.0 >= days {
                continue;
            }
            if let Some(org) = zone.mail_org_at(e.target) {
                let domains = zone.domains_of_org(org, day);
                mail.record(e.target, day, &domains, &catalog.get(org).name);
            }
            if let Some(org) = zone.ns_org_at(e.target) {
                let domains = zone.domains_of_org(org, day);
                dns.record(e.target, day, &domains, &catalog.get(org).name);
            }
        }

        Some(InfrastructureImpact {
            mail: mail.finish(),
            dns: dns.finish(),
        })
    }

    /// Render a short text report.
    pub fn render(&self) -> String {
        let mut s = String::from("Infrastructure impact (Section 8 extension)\n");
        for (label, i) in [("mail (MX)", &self.mail), ("DNS (NS)", &self.dns)] {
            s.push_str(&format!(
                "  {label}: {} events on {} addresses; {} domains affected at least once (mean {:.0}/day)\n",
                i.events,
                i.targeted_ips,
                i.affected_domains,
                i.daily_domains.daily_mean(),
            ));
            for (org, n) in i.top_orgs.iter().take(3) {
                s.push_str(&format!("    {org:<28} {n} domains\n"));
            }
        }
        s
    }
}

struct Accum {
    events: u64,
    ips: HashSet<Ipv4Addr>,
    affected: HashSet<u32>,
    daily: TimeSeries,
    per_org: HashMap<String, HashSet<u32>>,
}

impl Accum {
    fn new(days: u32) -> Accum {
        Accum {
            events: 0,
            ips: HashSet::new(),
            affected: HashSet::new(),
            daily: TimeSeries::zeros(days),
            per_org: HashMap::new(),
        }
    }

    fn record(
        &mut self,
        target: Ipv4Addr,
        day: DayIndex,
        domains: &[dosscope_dns::DomainId],
        org: &str,
    ) {
        self.events += 1;
        self.ips.insert(target);
        self.daily.add(day, domains.len() as f64);
        let org_set = self.per_org.entry(org.to_string()).or_default();
        for d in domains {
            self.affected.insert(d.0);
            org_set.insert(d.0);
        }
    }

    fn finish(self) -> InfraImpact {
        let mut top_orgs: Vec<(String, u64)> = self
            .per_org
            .into_iter()
            .map(|(k, v)| (k, v.len() as u64))
            .collect();
        top_orgs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        InfraImpact {
            events: self.events,
            targeted_ips: self.ips.len() as u64,
            affected_domains: self.affected.len() as u64,
            daily_domains: self.daily,
            top_orgs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventStore;
    use dosscope_dns::{DayRange, OrgCatalog, OrgInfra, OrgRole, Placement, Tld, ZoneStore};
    use dosscope_geo::{AsDb, GeoDb};
    use dosscope_types::{
        AttackEvent, AttackVector, PortSignature, SimTime, TimeRange, TransportProto,
        SECS_PER_DAY,
    };

    fn tele(ip: &str, day: u64) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(
                SimTime(day * SECS_PER_DAY + 100),
                SimTime(day * SECS_PER_DAY + 400),
            ),
            vector: AttackVector::RandomlySpoofed {
                proto: TransportProto::Tcp,
                ports: PortSignature::Single(25),
            },
            packets: 100,
            bytes: 4000,
            intensity_pps: 1.0,
            distinct_sources: 10,
        }
    }

    struct World {
        zone: ZoneStore,
        catalog: OrgCatalog,
        geo: GeoDb,
        asdb: AsDb,
    }

    fn world() -> World {
        let mut catalog = OrgCatalog::new();
        let hoster = catalog.add("MailHost", None, OrgRole::Hoster, false);
        let other = catalog.add("Other", None, OrgRole::Hoster, false);
        let mut zone = ZoneStore::new();
        for i in 0..5 {
            let d = zone.add_domain(Tld::Com, DayRange::new(DayIndex(0), DayIndex(30)));
            zone.place(Placement {
                domain: d,
                ip: format!("10.0.0.{}", i + 1).parse().unwrap(),
                days: DayRange::new(DayIndex(0), DayIndex(30)),
                ns: hoster,
                cname: None,
            });
        }
        // One domain at another org, to check isolation.
        let d = zone.add_domain(Tld::Net, DayRange::new(DayIndex(0), DayIndex(30)));
        zone.place(Placement {
            domain: d,
            ip: "10.0.1.1".parse().unwrap(),
            days: DayRange::new(DayIndex(0), DayIndex(30)),
            ns: other,
            cname: None,
        });
        zone.register_infra(OrgInfra {
            org: hoster,
            mx_ips: vec!["10.9.9.9".parse().unwrap()],
            ns_ips: vec!["10.9.9.10".parse().unwrap()],
        });
        World {
            zone,
            catalog,
            geo: GeoDb::new(),
            asdb: AsDb::new(),
        }
    }

    #[test]
    fn mail_attack_affects_all_org_domains() {
        let w = world();
        let mut store = EventStore::new();
        store.ingest_telescope(vec![tele("10.9.9.9", 3)]);
        let fw = Framework::new(&store, &w.geo, &w.asdb, 30).with_dns(&w.zone, &w.catalog);
        let impact = InfrastructureImpact::analyze(&fw).expect("dns attached");
        assert_eq!(impact.mail.events, 1);
        assert_eq!(impact.mail.targeted_ips, 1);
        assert_eq!(impact.mail.affected_domains, 5, "all MailHost domains");
        assert_eq!(impact.mail.daily_domains.get(DayIndex(3)), 5.0);
        assert_eq!(impact.mail.top_orgs[0], ("MailHost".to_string(), 5));
        // No NS addresses were attacked.
        assert_eq!(impact.dns.events, 0);
        assert_eq!(impact.dns.affected_domains, 0);
    }

    #[test]
    fn ns_attack_tracked_separately() {
        let w = world();
        let mut store = EventStore::new();
        store.ingest_telescope(vec![tele("10.9.9.10", 7)]);
        let fw = Framework::new(&store, &w.geo, &w.asdb, 30).with_dns(&w.zone, &w.catalog);
        let impact = InfrastructureImpact::analyze(&fw).unwrap();
        assert_eq!(impact.dns.events, 1);
        assert_eq!(impact.dns.affected_domains, 5);
        assert_eq!(impact.mail.events, 0);
    }

    #[test]
    fn ordinary_attacks_do_not_count() {
        let w = world();
        let mut store = EventStore::new();
        store.ingest_telescope(vec![tele("10.0.0.1", 3)]); // a hosting IP
        let fw = Framework::new(&store, &w.geo, &w.asdb, 30).with_dns(&w.zone, &w.catalog);
        let impact = InfrastructureImpact::analyze(&fw).unwrap();
        assert_eq!(impact.mail.events + impact.dns.events, 0);
    }

    #[test]
    fn render_mentions_orgs() {
        let w = world();
        let mut store = EventStore::new();
        store.ingest_telescope(vec![tele("10.9.9.9", 3)]);
        let fw = Framework::new(&store, &w.geo, &w.asdb, 30).with_dns(&w.zone, &w.catalog);
        let impact = InfrastructureImpact::analyze(&fw).unwrap();
        let text = impact.render();
        assert!(text.contains("MailHost"));
        assert!(text.contains("5 domains"));
    }

    #[test]
    fn requires_dns_data() {
        let w = world();
        let store = EventStore::new();
        let fw = Framework::new(&store, &w.geo, &w.asdb, 30);
        assert!(InfrastructureImpact::analyze(&fw).is_none());
    }
}
