//! Event ingestion and the per-source aggregates of Table 1, on a
//! columnar struct-of-arrays store.
//!
//! # Layout
//!
//! Events are *stored* as parallel column vectors, one block per source,
//! kept sorted by `(start, target)` exactly like the old row store:
//!
//! ```text
//!                    shared Interner<Ipv4Addr> (victim ⇄ u32 id)
//!                                   ▲        ▲
//!            telescope block        │        │        honeypot block
//!   row ──▶  victim  : Vec<u32> ────┘        └──── victim  : Vec<u32>
//!            start   : Vec<u64>                    start   : Vec<u64>
//!            end     : Vec<u64>                    end     : Vec<u64>
//!            kind    : Vec<u8>   ◀─ vector tag ─▶  kind    : Vec<u8>
//!            aux     : Vec<u32>  ◀─ port/#ports ─▶ aux     : Vec<u32>
//!            packets : Vec<u64>                    packets : Vec<u64>
//!            bytes   : Vec<u64>                    bytes   : Vec<u64>
//!            intensity:Vec<f64>                    intensity:Vec<f64>
//!            sources : Vec<u32>                    sources : Vec<u32>
//!            + RunIndex (kind → ascending row ids) per block
//! ```
//!
//! The [`AttackVector`] sum type is flattened into a `(kind, aux)` pair
//! (see `encode_vector`): a one-byte predicate key that the per-block
//! [`RunIndex`] turns into posting lists, so "every NTP reflection
//! event" or "every single-port TCP flood" is a sequential walk of a
//! small ascending row-id run instead of a match over wide structs.
//!
//! Victims are interned to dense `u32` ids in a table *shared by both
//! sources*, so the distinct-target aggregates are [`BitSet`]s over ids:
//! Table 1's unique-target counts are popcounts maintained at ingest,
//! and the telescope ∩ honeypot common-target count (the paper's 282 k)
//! is a word-wise AND-popcount with no hashing. The /24 and /16 block
//! counts are bitsets over the raw prefix spaces (2 MiB and 8 KiB).
//!
//! # Boundaries
//!
//! The public API still speaks [`AttackEvent`]: ingest takes the same
//! event vectors, and queries hand back [`EventsView`]s that decode rows
//! on the fly. Ingest is merge-equivalent to the old
//! `extend + stable sort_by_key(start, target)`: a staged batch is
//! stably sorted, then either appended (the common case — detector
//! output arrives in time order) or two-pointer-merged, with existing
//! rows winning ties so the result is bit-for-bit what the old re-sort
//! produced.

use dosscope_types::{
    AttackEvent, AttackVector, BitSet, EventSource, FastSet, Interner, PortSignature, Prefix16,
    Prefix24, ReflectionProtocol, RunIndex, SimTime, TimeRange, TransportProto,
};
use std::borrow::Borrow;
use std::net::Ipv4Addr;

/// Number of distinct `(vector kind)` codes: 4 transports × 3 port-signature
/// classes for telescope floods, plus 8 reflection protocols.
pub(crate) const KINDS: usize = 12 + ReflectionProtocol::ALL.len();

/// First kind code used by reflection vectors.
pub(crate) const KIND_REFLECTION: u8 = 12;

/// Flatten an [`AttackVector`] into its `(kind, aux)` column encoding.
///
/// Telescope floods: `kind = proto * 3 + class` with class 0 = single
/// port (`aux` = the port), 1 = multi port (`aux` = distinct-port
/// count), 2 = no signature (`aux` = 0). Reflection events:
/// `kind = 12 + protocol`, `aux = 0`.
pub(crate) fn encode_vector(vector: AttackVector) -> (u8, u32) {
    match vector {
        AttackVector::RandomlySpoofed { proto, ports } => {
            let (class, aux) = match ports {
                PortSignature::Single(port) => (0, port as u32),
                PortSignature::Multi(n) => (1, n),
                PortSignature::None => (2, 0),
            };
            ((proto.index() * 3) as u8 + class, aux)
        }
        AttackVector::Reflection { protocol } => (KIND_REFLECTION + protocol as u8, 0),
    }
}

/// Invert [`encode_vector`].
pub(crate) fn decode_vector(kind: u8, aux: u32) -> AttackVector {
    if kind >= KIND_REFLECTION {
        AttackVector::Reflection {
            protocol: ReflectionProtocol::ALL[(kind - KIND_REFLECTION) as usize],
        }
    } else {
        AttackVector::RandomlySpoofed {
            proto: TransportProto::ALL[(kind / 3) as usize],
            ports: match kind % 3 {
                0 => PortSignature::Single(aux as u16),
                1 => PortSignature::Multi(aux),
                _ => PortSignature::None,
            },
        }
    }
}

/// One source's parallel column vectors, sorted by `(start, victim)`.
#[derive(Debug, Default, Clone)]
pub(crate) struct ColumnBlock {
    /// Interned victim id per row (resolve via the store's interner).
    pub(crate) victim: Vec<u32>,
    /// Event start, raw [`SimTime`] seconds.
    pub(crate) start: Vec<u64>,
    /// Event end, raw [`SimTime`] seconds.
    pub(crate) end: Vec<u64>,
    /// Flattened vector tag (see [`encode_vector`]).
    pub(crate) kind: Vec<u8>,
    /// Vector payload: single port or distinct-port count.
    pub(crate) aux: Vec<u32>,
    /// Observed packet total.
    pub(crate) packets: Vec<u64>,
    /// Observed byte total.
    pub(crate) bytes: Vec<u64>,
    /// Source-native intensity.
    pub(crate) intensity: Vec<f64>,
    /// Distinct (spoofed) source count.
    pub(crate) sources: Vec<u32>,
}

/// An encoded staging row, sortable by the ingest key.
#[derive(Debug, Clone, Copy)]
struct Row {
    addr: u32,
    start: u64,
    end: u64,
    kind: u8,
    aux: u32,
    packets: u64,
    bytes: u64,
    intensity: f64,
    sources: u32,
}

impl Row {
    fn encode(e: &AttackEvent) -> Row {
        let (kind, aux) = encode_vector(e.vector);
        Row {
            addr: u32::from(e.target),
            start: e.when.start.0,
            end: e.when.end.0,
            kind,
            aux,
            packets: e.packets,
            bytes: e.bytes,
            intensity: e.intensity_pps,
            sources: e.distinct_sources,
        }
    }
}

impl ColumnBlock {
    pub(crate) fn len(&self) -> usize {
        self.victim.len()
    }

    /// Decode row `i` back into the boundary [`AttackEvent`] type.
    pub(crate) fn event(&self, i: usize, victims: &Interner<Ipv4Addr>) -> AttackEvent {
        AttackEvent {
            target: victims.resolve(self.victim[i]),
            when: TimeRange::new(SimTime(self.start[i]), SimTime(self.end[i])),
            vector: decode_vector(self.kind[i], self.aux[i]),
            packets: self.packets[i],
            bytes: self.bytes[i],
            intensity_pps: self.intensity[i],
            distinct_sources: self.sources[i],
        }
    }

    fn push(&mut self, row: Row, victim_id: u32) {
        self.victim.push(victim_id);
        self.start.push(row.start);
        self.end.push(row.end);
        self.kind.push(row.kind);
        self.aux.push(row.aux);
        self.packets.push(row.packets);
        self.bytes.push(row.bytes);
        self.intensity.push(row.intensity);
        self.sources.push(row.sources);
    }

    /// Copy row `i` of `other` onto the end of `self`.
    pub(crate) fn push_from(&mut self, other: &ColumnBlock, i: usize, victim_id: u32) {
        self.victim.push(victim_id);
        self.start.push(other.start[i]);
        self.end.push(other.end[i]);
        self.kind.push(other.kind[i]);
        self.aux.push(other.aux[i]);
        self.packets.push(other.packets[i]);
        self.bytes.push(other.bytes[i]);
        self.intensity.push(other.intensity[i]);
        self.sources.push(other.sources[i]);
    }

    fn reserve(&mut self, additional: usize) {
        self.victim.reserve(additional);
        self.start.reserve(additional);
        self.end.reserve(additional);
        self.kind.reserve(additional);
        self.aux.reserve(additional);
        self.packets.reserve(additional);
        self.bytes.reserve(additional);
        self.intensity.reserve(additional);
        self.sources.reserve(additional);
    }

    fn memory_bytes(&self) -> usize {
        self.victim.capacity() * 4
            + self.start.capacity() * 8
            + self.end.capacity() * 8
            + self.kind.capacity()
            + self.aux.capacity() * 4
            + self.packets.capacity() * 8
            + self.bytes.capacity() * 8
            + self.intensity.capacity() * 8
            + self.sources.capacity() * 4
    }
}

/// Per-source incremental aggregates, maintained at ingest so every
/// Table 1 query is O(1) and never re-scans the columns.
#[derive(Debug, Default, Clone)]
struct SourceStats {
    /// Distinct victims as bits over shared interned ids.
    victims: BitSet,
    /// Distinct /24 blocks as bits over the raw 24-bit prefix space.
    blocks24: BitSet,
    /// Distinct /16 blocks as bits over the raw 16-bit prefix space.
    blocks16: BitSet,
}

impl SourceStats {
    fn admit(&mut self, addr: u32, victim_id: u32) {
        self.victims.insert(victim_id);
        self.blocks24.insert(addr >> 8);
        self.blocks16.insert(addr >> 16);
    }
}

/// Aggregate counts for one source (a row of Table 1). ASN counting needs
/// the enrichment metadata and lives in [`crate::report`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceSummary {
    /// Attack events.
    pub events: u64,
    /// Unique target IP addresses.
    pub targets: u64,
    /// Unique /24 blocks with at least one target.
    pub blocks24: u64,
    /// Unique /16 blocks with at least one target.
    pub blocks16: u64,
}

/// The ingested event sets as a columnar, time-sorted store (see the
/// module docs for the layout).
#[derive(Debug, Default)]
pub struct EventStore {
    victims: Interner<Ipv4Addr>,
    tele: ColumnBlock,
    hp: ColumnBlock,
    tele_index: RunIndex,
    hp_index: RunIndex,
    tele_stats: SourceStats,
    hp_stats: SourceStats,
}

impl EventStore {
    /// Empty store.
    pub fn new() -> EventStore {
        EventStore {
            tele_index: RunIndex::new(KINDS),
            hp_index: RunIndex::new(KINDS),
            ..EventStore::default()
        }
    }

    /// Ingest the telescope detector's events (any order; merge-sorted).
    pub fn ingest_telescope(&mut self, events: Vec<AttackEvent>) {
        debug_assert!(events.iter().all(|e| e.source() == EventSource::Telescope));
        self.ingest_rows(EventSource::Telescope, encode_batch(events.iter()));
    }

    /// Ingest the honeypot fleet's events (any order; merge-sorted).
    pub fn ingest_honeypot(&mut self, events: Vec<AttackEvent>) {
        debug_assert!(events.iter().all(|e| e.source() == EventSource::Honeypot));
        self.ingest_rows(EventSource::Honeypot, encode_batch(events.iter()));
    }

    /// Ingest from borrowed events without ever cloning an
    /// [`AttackEvent`]: rows are encoded straight into the staging
    /// columns. This is the sharded pipeline's zero-copy handoff.
    pub fn ingest_refs<'a>(
        &mut self,
        source: EventSource,
        events: impl Iterator<Item = &'a AttackEvent>,
    ) {
        self.ingest_rows(source, encode_batch(events));
    }

    fn ingest_rows(&mut self, source: EventSource, mut staging: Vec<Row>) {
        if staging.is_empty() {
            return;
        }
        // The old store re-sorted `existing ⧺ batch` with a stable sort:
        // equivalent to stably sorting the batch alone, then merging with
        // existing rows winning key ties.
        staging.sort_by_key(|r| (r.start, r.addr));

        let (block, index, stats) = match source {
            EventSource::Telescope => (&mut self.tele, &mut self.tele_index, &mut self.tele_stats),
            EventSource::Honeypot => (&mut self.hp, &mut self.hp_index, &mut self.hp_stats),
        };

        // Aggregates are order-independent and insert-only: admit the
        // staged rows up front, whatever merge path runs below.
        for row in &staging {
            let addr = Ipv4Addr::from(row.addr);
            let id = self.victims.intern(addr);
            stats.admit(row.addr, id);
        }

        let n = block.len();
        let append_ok = n == 0 || {
            let last = (block.start[n - 1], resolve_addr(&self.victims, block.victim[n - 1]));
            (staging[0].start, staging[0].addr) >= last
        };

        if append_ok {
            block.reserve(staging.len());
            for row in staging {
                let id = self.victims.intern(Ipv4Addr::from(row.addr));
                index.push(row.kind, block.len() as u32);
                block.push(row, id);
            }
            return;
        }

        // Two-pointer merge into fresh columns; existing rows win ties.
        let mut merged = ColumnBlock::default();
        merged.reserve(n + staging.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < n || j < staging.len() {
            let take_existing = j >= staging.len()
                || (i < n && {
                    let ek = (block.start[i], resolve_addr(&self.victims, block.victim[i]));
                    ek <= (staging[j].start, staging[j].addr)
                });
            if take_existing {
                let id = block.victim[i];
                merged.push_from(block, i, id);
                i += 1;
            } else {
                let id = self.victims.intern(Ipv4Addr::from(staging[j].addr));
                merged.push(staging[j], id);
                j += 1;
            }
        }
        *block = merged;
        index.clear();
        for (row, &kind) in block.kind.iter().enumerate() {
            index.push(kind, row as u32);
        }
    }

    /// Telescope events, sorted by start.
    pub fn telescope(&self) -> EventsView<'_> {
        EventsView {
            block: &self.tele,
            victims: &self.victims,
        }
    }

    /// Honeypot events, sorted by start.
    pub fn honeypot(&self) -> EventsView<'_> {
        EventsView {
            block: &self.hp,
            victims: &self.victims,
        }
    }

    /// Both sources chained (telescope first; not globally sorted).
    pub fn all(&self) -> impl Iterator<Item = AttackEvent> + '_ {
        self.telescope().into_iter().chain(self.honeypot())
    }

    /// Events of one source.
    pub fn of(&self, source: EventSource) -> EventsView<'_> {
        match source {
            EventSource::Telescope => self.telescope(),
            EventSource::Honeypot => self.honeypot(),
        }
    }

    /// Total event count.
    pub fn len(&self) -> usize {
        self.tele.len() + self.hp.len()
    }

    /// True when nothing was ingested.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-source aggregates over an arbitrary event set. Works for both
    /// borrowed and owned event iterators.
    pub fn summarize<E: Borrow<AttackEvent>>(events: impl Iterator<Item = E>) -> SourceSummary {
        let mut targets: FastSet<Ipv4Addr> = FastSet::default();
        let mut blocks24: FastSet<Prefix24> = FastSet::default();
        let mut blocks16: FastSet<Prefix16> = FastSet::default();
        let mut n = 0u64;
        for e in events {
            let e = e.borrow();
            n += 1;
            targets.insert(e.target);
            blocks24.insert(Prefix24::of(e.target));
            blocks16.insert(Prefix16::of(e.target));
        }
        SourceSummary {
            events: n,
            targets: targets.len() as u64,
            blocks24: blocks24.len() as u64,
            blocks16: blocks16.len() as u64,
        }
    }

    /// The Table 1 aggregate for one source — O(1), maintained at ingest.
    pub fn summary(&self, source: EventSource) -> SourceSummary {
        let (block, stats) = match source {
            EventSource::Telescope => (&self.tele, &self.tele_stats),
            EventSource::Honeypot => (&self.hp, &self.hp_stats),
        };
        SourceSummary {
            events: block.len() as u64,
            targets: stats.victims.len() as u64,
            blocks24: stats.blocks24.len() as u64,
            blocks16: stats.blocks16.len() as u64,
        }
    }

    /// The Table 1 aggregate for the combined data: union popcounts over
    /// the per-source bitsets — no re-scan of either column block.
    pub fn summary_combined(&self) -> SourceSummary {
        SourceSummary {
            events: self.len() as u64,
            targets: self.tele_stats.victims.union_count(&self.hp_stats.victims) as u64,
            blocks24: self.tele_stats.blocks24.union_count(&self.hp_stats.blocks24) as u64,
            blocks16: self.tele_stats.blocks16.union_count(&self.hp_stats.blocks16) as u64,
        }
    }

    /// Unique targets common to both sources (the paper's 282 k): an
    /// AND-popcount over the shared-interner victim bitsets.
    pub fn common_targets(&self) -> u64 {
        self.tele_stats
            .victims
            .intersection_count(&self.hp_stats.victims) as u64
    }

    /// Every distinct victim of one source, in interning (first-seen)
    /// order — the columnar feed for per-target enrichment counts.
    pub fn distinct_targets(&self, source: EventSource) -> impl Iterator<Item = Ipv4Addr> + '_ {
        let stats = match source {
            EventSource::Telescope => &self.tele_stats,
            EventSource::Honeypot => &self.hp_stats,
        };
        stats.victims.iter().map(|id| self.victims.resolve(id))
    }

    /// Every distinct victim across both sources.
    pub fn distinct_targets_combined(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        let mut union = self.tele_stats.victims.clone();
        union.union_with(&self.hp_stats.victims);
        union
            .iter()
            .map(|id| self.victims.resolve(id))
            .collect::<Vec<_>>()
            .into_iter()
    }

    /// The full attack history of one victim, both sources merged by
    /// start time (telescope first on ties), decoded to events.
    pub fn history(&self, target: Ipv4Addr) -> Vec<AttackEvent> {
        let Some(id) = self.victims.get(target) else {
            return Vec::new();
        };
        let collect = |block: &ColumnBlock| -> Vec<usize> {
            (0..block.len()).filter(|&i| block.victim[i] == id).collect()
        };
        let t_rows = collect(&self.tele);
        let h_rows = collect(&self.hp);
        let mut out = Vec::with_capacity(t_rows.len() + h_rows.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < t_rows.len() || j < h_rows.len() {
            let take_tele = j >= h_rows.len()
                || (i < t_rows.len() && self.tele.start[t_rows[i]] <= self.hp.start[h_rows[j]]);
            if take_tele {
                out.push(self.tele.event(t_rows[i], &self.victims));
                i += 1;
            } else {
                out.push(self.hp.event(h_rows[j], &self.victims));
                j += 1;
            }
        }
        out
    }

    /// Approximate heap footprint of the store in bytes: column vectors,
    /// interner, indexes and aggregate bitsets. This is the "peak
    /// working set" number the scale sweep records.
    pub fn memory_bytes(&self) -> usize {
        self.tele.memory_bytes()
            + self.hp.memory_bytes()
            + self.victims.memory_bytes()
            + self.tele_index.memory_bytes()
            + self.hp_index.memory_bytes()
            + self.tele_stats.victims.memory_bytes()
            + self.tele_stats.blocks24.memory_bytes()
            + self.tele_stats.blocks16.memory_bytes()
            + self.hp_stats.victims.memory_bytes()
            + self.hp_stats.blocks24.memory_bytes()
            + self.hp_stats.blocks16.memory_bytes()
    }

    /// Merge per-shard stores into one canonical store by a k-way walk
    /// over the shards' column blocks — no event struct is decoded or
    /// cloned on the way.
    ///
    /// Rows are taken in ascending `(start, victim)` order. Equal keys
    /// can never sit in different shards (a victim belongs to exactly
    /// one shard), so the merge is deterministic for *any* shard
    /// enumeration order and reproduces the serial store exactly.
    pub(crate) fn merge_shards(shards: &[EventStore]) -> EventStore {
        let mut out = EventStore::new();
        out.absorb(shards, EventSource::Telescope);
        out.absorb(shards, EventSource::Honeypot);
        out
    }

    fn absorb(&mut self, shards: &[EventStore], source: EventSource) {
        let parts: Vec<(&ColumnBlock, &Interner<Ipv4Addr>)> = shards
            .iter()
            .map(|s| (s.block(source), &s.victims))
            .collect();
        let total: usize = parts.iter().map(|(b, _)| b.len()).sum();
        let (block, index, stats) = match source {
            EventSource::Telescope => (&mut self.tele, &mut self.tele_index, &mut self.tele_stats),
            EventSource::Honeypot => (&mut self.hp, &mut self.hp_index, &mut self.hp_stats),
        };
        block.reserve(total);
        let mut cursors = vec![0usize; parts.len()];
        loop {
            let mut best: Option<(u64, u32, usize)> = None;
            for (k, (b, ids)) in parts.iter().enumerate() {
                let i = cursors[k];
                if i >= b.len() {
                    continue;
                }
                let key = (b.start[i], resolve_addr(ids, b.victim[i]), k);
                if best.is_none_or(|(s, a, _)| (key.0, key.1) < (s, a)) {
                    best = Some(key);
                }
            }
            let Some((_, addr, k)) = best else {
                break;
            };
            let (b, _) = parts[k];
            let i = cursors[k];
            cursors[k] += 1;
            let id = self.victims.intern(Ipv4Addr::from(addr));
            stats.admit(addr, id);
            index.push(b.kind[i], block.len() as u32);
            block.push_from(b, i, id);
        }
    }

    /// The column block of one source (crate-internal scan surface).
    pub(crate) fn block(&self, source: EventSource) -> &ColumnBlock {
        match source {
            EventSource::Telescope => &self.tele,
            EventSource::Honeypot => &self.hp,
        }
    }

    /// The kind-predicate index of one source.
    pub(crate) fn kind_index(&self, source: EventSource) -> &RunIndex {
        match source {
            EventSource::Telescope => &self.tele_index,
            EventSource::Honeypot => &self.hp_index,
        }
    }

    /// The shared victim interner.
    pub(crate) fn victim_ids(&self) -> &Interner<Ipv4Addr> {
        &self.victims
    }
}

fn resolve_addr(victims: &Interner<Ipv4Addr>, id: u32) -> u32 {
    u32::from(victims.resolve(id))
}

fn encode_batch<'a>(events: impl Iterator<Item = &'a AttackEvent>) -> Vec<Row> {
    events.map(Row::encode).collect()
}

/// A borrowed, zero-copy view of one source's events in store order.
///
/// The view decodes rows into owned [`AttackEvent`]s on access: `get`
/// and iteration hand back values, not references, so call sites that
/// previously iterated `&[AttackEvent]` keep working with at most a
/// dropped `&`/`.cloned()`. Equality against other views and against
/// event slices compares decoded rows, which keeps the serial-vs-sharded
/// equivalence assertions byte-for-byte meaningful.
#[derive(Clone, Copy)]
pub struct EventsView<'a> {
    block: &'a ColumnBlock,
    victims: &'a Interner<Ipv4Addr>,
}

impl<'a> EventsView<'a> {
    /// Number of events in the view.
    pub fn len(&self) -> usize {
        self.block.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.block.len() == 0
    }

    /// Decode the event at row `i` (panics when out of bounds).
    pub fn get(&self, i: usize) -> AttackEvent {
        self.block.event(i, self.victims)
    }

    /// Iterate the events in store order, decoding each row.
    pub fn iter(&self) -> EventsIter<'a> {
        EventsIter {
            view: *self,
            next: 0,
            back: self.block.len(),
        }
    }

    /// Materialize the view into an owned vector.
    pub fn to_vec(&self) -> Vec<AttackEvent> {
        self.iter().collect()
    }
}

/// Owning-item iterator over an [`EventsView`].
#[derive(Clone)]
pub struct EventsIter<'a> {
    view: EventsView<'a>,
    next: usize,
    back: usize,
}

impl Iterator for EventsIter<'_> {
    type Item = AttackEvent;

    fn next(&mut self) -> Option<AttackEvent> {
        if self.next >= self.back {
            return None;
        }
        let e = self.view.get(self.next);
        self.next += 1;
        Some(e)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.back - self.next;
        (n, Some(n))
    }
}

impl ExactSizeIterator for EventsIter<'_> {}

impl DoubleEndedIterator for EventsIter<'_> {
    fn next_back(&mut self) -> Option<AttackEvent> {
        if self.next >= self.back {
            return None;
        }
        self.back -= 1;
        Some(self.view.get(self.back))
    }
}

impl<'a> IntoIterator for EventsView<'a> {
    type Item = AttackEvent;
    type IntoIter = EventsIter<'a>;

    fn into_iter(self) -> EventsIter<'a> {
        self.iter()
    }
}

impl<'a> IntoIterator for &EventsView<'a> {
    type Item = AttackEvent;
    type IntoIter = EventsIter<'a>;

    fn into_iter(self) -> EventsIter<'a> {
        self.iter()
    }
}

impl PartialEq for EventsView<'_> {
    fn eq(&self, other: &EventsView<'_>) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl PartialEq<[AttackEvent]> for EventsView<'_> {
    fn eq(&self, other: &[AttackEvent]) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == *b)
    }
}

impl PartialEq<Vec<AttackEvent>> for EventsView<'_> {
    fn eq(&self, other: &Vec<AttackEvent>) -> bool {
        *self == other[..]
    }
}

impl PartialEq<&[AttackEvent]> for EventsView<'_> {
    fn eq(&self, other: &&[AttackEvent]) -> bool {
        *self == **other
    }
}

impl std::fmt::Debug for EventsView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosscope_types::{
        AttackVector, PortSignature, ReflectionProtocol, SimTime, TimeRange, TransportProto,
    };

    fn tele(ip: &str, start: u64) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(SimTime(start), SimTime(start + 100)),
            vector: AttackVector::RandomlySpoofed {
                proto: TransportProto::Tcp,
                ports: PortSignature::Single(80),
            },
            packets: 100,
            bytes: 4000,
            intensity_pps: 1.0,
            distinct_sources: 10,
        }
    }

    fn hp(ip: &str, start: u64) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(SimTime(start), SimTime(start + 100)),
            vector: AttackVector::Reflection {
                protocol: ReflectionProtocol::Ntp,
            },
            packets: 200,
            bytes: 8000,
            intensity_pps: 5.0,
            distinct_sources: 4,
        }
    }

    #[test]
    fn summaries() {
        let mut s = EventStore::new();
        s.ingest_telescope(vec![
            tele("10.0.0.1", 50),
            tele("10.0.0.2", 10),
            tele("10.0.0.1", 500),
        ]);
        s.ingest_honeypot(vec![hp("10.0.1.1", 30), hp("10.0.0.1", 90)]);

        let t = s.summary(EventSource::Telescope);
        assert_eq!(t.events, 3);
        assert_eq!(t.targets, 2);
        assert_eq!(t.blocks24, 1);
        assert_eq!(t.blocks16, 1);

        let h = s.summary(EventSource::Honeypot);
        assert_eq!(h.events, 2);
        assert_eq!(h.targets, 2);
        assert_eq!(h.blocks24, 2);

        let c = s.summary_combined();
        assert_eq!(c.events, 5);
        assert_eq!(c.targets, 3, "overlapping target counted once");
        assert_eq!(s.common_targets(), 1);
    }

    #[test]
    fn ingest_sorts_by_start() {
        let mut s = EventStore::new();
        s.ingest_telescope(vec![tele("10.0.0.1", 500), tele("10.0.0.2", 10)]);
        let events = s.telescope().to_vec();
        assert!(events.windows(2).all(|w| w[0].when.start <= w[1].when.start));
    }

    #[test]
    fn vector_encoding_roundtrips() {
        let mut vectors = vec![];
        for proto in TransportProto::ALL {
            vectors.push(AttackVector::RandomlySpoofed {
                proto,
                ports: PortSignature::Single(443),
            });
            vectors.push(AttackVector::RandomlySpoofed {
                proto,
                ports: PortSignature::Multi(17),
            });
            vectors.push(AttackVector::RandomlySpoofed {
                proto,
                ports: PortSignature::None,
            });
        }
        for protocol in ReflectionProtocol::ALL {
            vectors.push(AttackVector::Reflection { protocol });
        }
        let mut seen = std::collections::HashSet::new();
        for v in vectors {
            let (kind, aux) = encode_vector(v);
            assert!((kind as usize) < KINDS, "kind codes stay in range");
            assert!(seen.insert((kind, aux)), "codes are distinct");
            assert_eq!(decode_vector(kind, aux), v, "decode inverts encode");
        }
    }

    #[test]
    fn views_decode_rows_exactly() {
        let mut s = EventStore::new();
        let batch = vec![tele("10.0.0.1", 500), tele("10.0.0.2", 10)];
        s.ingest_telescope(batch.clone());
        let mut expect = batch;
        expect.sort_by_key(|e| (e.when.start, e.target));
        assert_eq!(s.telescope(), expect, "view equals the sorted rows");
        assert_eq!(s.telescope().get(0), expect[0]);
        assert_eq!(s.telescope().to_vec(), expect);
        assert_eq!(s.telescope().iter().len(), 2);
        let rev: Vec<AttackEvent> = s.telescope().iter().rev().collect();
        assert_eq!(rev[1], expect[0], "double-ended iteration");
    }

    #[test]
    fn out_of_order_ingest_matches_row_semantics() {
        // Second batch starts before the first ends: forces the merge
        // path, which must reproduce the old extend-and-stable-sort.
        let mut s = EventStore::new();
        let b1 = vec![tele("10.0.0.9", 300), tele("10.0.0.1", 700)];
        let b2 = vec![tele("10.0.0.3", 100), tele("10.0.0.1", 300), tele("10.0.0.9", 300)];
        s.ingest_telescope(b1.clone());
        s.ingest_telescope(b2.clone());
        let mut rows: Vec<AttackEvent> = b1;
        rows.extend(b2);
        rows.sort_by_key(|e| (e.when.start, e.target));
        assert_eq!(s.telescope(), rows);
    }

    #[test]
    fn history_merges_sources_by_start() {
        let mut s = EventStore::new();
        s.ingest_telescope(vec![tele("10.0.0.1", 50), tele("10.0.0.2", 60), tele("10.0.0.1", 500)]);
        s.ingest_honeypot(vec![hp("10.0.0.1", 90), hp("10.0.0.1", 50)]);
        let h = s.history("10.0.0.1".parse().unwrap());
        assert_eq!(h.len(), 4);
        let starts: Vec<u64> = h.iter().map(|e| e.when.start.0).collect();
        assert_eq!(starts, vec![50, 50, 90, 500]);
        assert_eq!(h[0].source(), EventSource::Telescope, "telescope wins ties");
        assert!(s.history("192.168.0.1".parse().unwrap()).is_empty());
    }

    #[test]
    fn empty_store() {
        let s = EventStore::new();
        assert!(s.is_empty());
        assert_eq!(s.summary_combined(), SourceSummary::default());
        assert_eq!(s.common_targets(), 0);
        assert_eq!(s.telescope().len(), 0);
        assert!(s.all().next().is_none());
    }

    #[test]
    fn memory_accounting_is_nonzero() {
        let mut s = EventStore::new();
        s.ingest_telescope(vec![tele("10.0.0.1", 50)]);
        assert!(s.memory_bytes() > 0);
    }
}
