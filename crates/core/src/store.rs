//! Event ingestion and the per-source aggregates of Table 1.

use dosscope_types::{AttackEvent, EventSource, FastSet, Prefix16, Prefix24};
use std::net::Ipv4Addr;

/// Aggregate counts for one source (a row of Table 1). ASN counting needs
/// the enrichment metadata and lives in [`crate::report`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceSummary {
    /// Attack events.
    pub events: u64,
    /// Unique target IP addresses.
    pub targets: u64,
    /// Unique /24 blocks with at least one target.
    pub blocks24: u64,
    /// Unique /16 blocks with at least one target.
    pub blocks16: u64,
}

/// The ingested event sets, kept sorted by start time per source.
#[derive(Debug, Default)]
pub struct EventStore {
    telescope: Vec<AttackEvent>,
    honeypot: Vec<AttackEvent>,
}

impl EventStore {
    /// Empty store.
    pub fn new() -> EventStore {
        EventStore::default()
    }

    /// Ingest the telescope detector's events (any order; re-sorted).
    pub fn ingest_telescope(&mut self, events: Vec<AttackEvent>) {
        debug_assert!(events
            .iter()
            .all(|e| e.source() == EventSource::Telescope));
        self.telescope.extend(events);
        self.telescope.sort_by_key(|e| (e.when.start, e.target));
    }

    /// Ingest the honeypot fleet's events (any order; re-sorted).
    pub fn ingest_honeypot(&mut self, events: Vec<AttackEvent>) {
        debug_assert!(events.iter().all(|e| e.source() == EventSource::Honeypot));
        self.honeypot.extend(events);
        self.honeypot.sort_by_key(|e| (e.when.start, e.target));
    }

    /// Telescope events, sorted by start.
    pub fn telescope(&self) -> &[AttackEvent] {
        &self.telescope
    }

    /// Honeypot events, sorted by start.
    pub fn honeypot(&self) -> &[AttackEvent] {
        &self.honeypot
    }

    /// Both sources chained (telescope first; not globally sorted).
    pub fn all(&self) -> impl Iterator<Item = &AttackEvent> {
        self.telescope.iter().chain(self.honeypot.iter())
    }

    /// Events of one source.
    pub fn of(&self, source: EventSource) -> &[AttackEvent] {
        match source {
            EventSource::Telescope => &self.telescope,
            EventSource::Honeypot => &self.honeypot,
        }
    }

    /// Total event count.
    pub fn len(&self) -> usize {
        self.telescope.len() + self.honeypot.len()
    }

    /// True when nothing was ingested.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-source aggregates over an arbitrary event set.
    pub fn summarize<'a>(events: impl Iterator<Item = &'a AttackEvent>) -> SourceSummary {
        let mut targets: FastSet<Ipv4Addr> = FastSet::default();
        let mut blocks24: FastSet<Prefix24> = FastSet::default();
        let mut blocks16: FastSet<Prefix16> = FastSet::default();
        let mut n = 0u64;
        for e in events {
            n += 1;
            targets.insert(e.target);
            blocks24.insert(Prefix24::of(e.target));
            blocks16.insert(Prefix16::of(e.target));
        }
        SourceSummary {
            events: n,
            targets: targets.len() as u64,
            blocks24: blocks24.len() as u64,
            blocks16: blocks16.len() as u64,
        }
    }

    /// The Table 1 aggregate for one source.
    pub fn summary(&self, source: EventSource) -> SourceSummary {
        Self::summarize(self.of(source).iter())
    }

    /// The Table 1 aggregate for the combined data.
    pub fn summary_combined(&self) -> SourceSummary {
        Self::summarize(self.all())
    }

    /// Unique targets common to both sources (the paper's 282 k).
    pub fn common_targets(&self) -> u64 {
        let t: FastSet<Ipv4Addr> = self.telescope.iter().map(|e| e.target).collect();
        self.honeypot
            .iter()
            .map(|e| e.target)
            .collect::<FastSet<_>>()
            .intersection(&t)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosscope_types::{AttackVector, PortSignature, ReflectionProtocol, SimTime, TimeRange, TransportProto};

    fn tele(ip: &str, start: u64) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(SimTime(start), SimTime(start + 100)),
            vector: AttackVector::RandomlySpoofed {
                proto: TransportProto::Tcp,
                ports: PortSignature::Single(80),
            },
            packets: 100,
            bytes: 4000,
            intensity_pps: 1.0,
            distinct_sources: 10,
        }
    }

    fn hp(ip: &str, start: u64) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(SimTime(start), SimTime(start + 100)),
            vector: AttackVector::Reflection {
                protocol: ReflectionProtocol::Ntp,
            },
            packets: 200,
            bytes: 8000,
            intensity_pps: 5.0,
            distinct_sources: 4,
        }
    }

    #[test]
    fn summaries() {
        let mut s = EventStore::new();
        s.ingest_telescope(vec![
            tele("10.0.0.1", 50),
            tele("10.0.0.2", 10),
            tele("10.0.0.1", 500),
        ]);
        s.ingest_honeypot(vec![hp("10.0.1.1", 30), hp("10.0.0.1", 90)]);

        let t = s.summary(EventSource::Telescope);
        assert_eq!(t.events, 3);
        assert_eq!(t.targets, 2);
        assert_eq!(t.blocks24, 1);
        assert_eq!(t.blocks16, 1);

        let h = s.summary(EventSource::Honeypot);
        assert_eq!(h.events, 2);
        assert_eq!(h.targets, 2);
        assert_eq!(h.blocks24, 2);

        let c = s.summary_combined();
        assert_eq!(c.events, 5);
        assert_eq!(c.targets, 3, "overlapping target counted once");
        assert_eq!(s.common_targets(), 1);
    }

    #[test]
    fn ingest_sorts_by_start() {
        let mut s = EventStore::new();
        s.ingest_telescope(vec![tele("10.0.0.1", 500), tele("10.0.0.2", 10)]);
        assert!(s.telescope().windows(2).all(|w| w[0].when.start <= w[1].when.start));
    }

    #[test]
    fn empty_store() {
        let s = EventStore::new();
        assert!(s.is_empty());
        assert_eq!(s.summary_combined(), SourceSummary::default());
        assert_eq!(s.common_targets(), 0);
    }
}
