//! Event ingestion and the per-source aggregates of Table 1, on a
//! columnar struct-of-arrays store with LSM-style sorted-run ingest.
//!
//! # Layout
//!
//! Events are *stored* as parallel column vectors. Each source owns a
//! consolidated `main` block sorted by `(start, target)` plus a stack of
//! pending *sorted runs* — batches that arrived out of order and have
//! not been merged yet:
//!
//! ```text
//!                    shared Interner<Ipv4Addr> (victim ⇄ u32 id)
//!                                   ▲        ▲
//!            telescope source       │        │        honeypot source
//!   main ──▶ victim  : Vec<u32> ────┘        └──── main: (same columns)
//!            start   : Vec<u64>                    runs: [sorted batch,
//!            end     : Vec<u64>                           sorted batch,
//!            kind    : Vec<u8>                            ...]
//!            aux     : Vec<u32>
//!            packets : Vec<u64>      each run is one ColumnBlock with
//!            bytes   : Vec<u64>      the same nine columns, sorted by
//!            intensity:Vec<f64>      (start, target) within itself
//!            sources : Vec<u32>
//!            + RunIndex (kind → ascending row ids) over `main` only
//! ```
//!
//! # Sorted-run ingest
//!
//! The old store merged *every* out-of-order batch into the full block —
//! an O(total) column rewrite per batch that made ingest quadratic at
//! tens of millions of rows. Ingest now costs O(batch log batch):
//!
//! * a batch is key-sorted (16-byte `(start, target, seq)` keys, so the
//!   unstable sort is order-identical to the old stable sort and never
//!   shuffles wide rows) and appended as a new run;
//! * in-order batches — detector output, the common case — append
//!   straight onto `main` (or the newest run) with zero extra cost;
//! * a binary-counter policy merges the two newest runs while the older
//!   one is no larger, so total merge traffic is O(n log n) and the run
//!   count stays logarithmic in the batch count;
//! * reads *consolidate lazily*: the first query (or an ingest that
//!   drives the run count past [`EventStore::set_run_threshold`])
//!   k-way-merges `main` and all runs through a [`LoserTree`] — the same
//!   primitive the sharded snapshot merge uses — and rebuilds the kind
//!   index. Large consolidations split on start-time pivots across a
//!   transient [`ShardPool`] when
//!   [`EventStore::set_consolidation_threads`] allows; the output is
//!   byte-identical for every thread count because the ranges cut the
//!   unique stable-merge sequence at lower-bound boundaries.
//!
//! Every observable order is *still* exactly the old store's
//! `extend + stable sort_by_key(start, target)`: runs are merged
//! oldest-first and the loser tree breaks key ties toward the older
//! source, so existing rows win ties bit-for-bit.
//!
//! The [`AttackVector`] sum type is flattened into a `(kind, aux)` pair
//! (see `encode_vector`): a one-byte predicate key that the per-source
//! [`RunIndex`] turns into posting lists over `main`. Victims are
//! interned to dense `u32` ids in a table *shared by both sources* —
//! ids are assigned in per-batch sorted order at ingest (runs carry
//! final ids, so consolidation never re-interns) — and the Table 1
//! aggregates are [`BitSet`]s over those ids, maintained at ingest.
//!
//! # Boundaries
//!
//! The public API still speaks [`AttackEvent`]: ingest takes the same
//! event vectors, and queries hand back [`EventsView`]s that decode rows
//! on the fly. Because consolidation happens on first read, the column
//! state sits behind a [`RwLock`]; views hold a read guard for their
//! lifetime (ingest takes `&mut self`, so a live view implies the store
//! is already consolidated and quiescent).

use dosscope_types::{
    AttackEvent, AttackVector, BitSet, EventSource, FastSet, Interner, LoserTree, PortSignature,
    Prefix16, Prefix24, ReflectionProtocol, RunIndex, ShardPool, SimTime, TimeRange,
    TransportProto,
};
use parking_lot::{RwLock, RwLockReadGuard};
use std::borrow::Borrow;
use std::net::Ipv4Addr;
use std::ops::Deref;

/// Number of distinct `(vector kind)` codes: 4 transports × 3 port-signature
/// classes for telescope floods, plus 8 reflection protocols.
pub(crate) const KINDS: usize = 12 + ReflectionProtocol::ALL.len();

/// First kind code used by reflection vectors.
pub(crate) const KIND_REFLECTION: u8 = 12;

/// Default pending-run ceiling before an ingest forces consolidation.
/// The binary-counter merge keeps the live run count logarithmic in the
/// batch count, so this is a backstop for adversarial batch patterns,
/// not the steady-state trigger (reads consolidate whatever is pending).
const DEFAULT_RUN_THRESHOLD: usize = 16;

/// Owned inputs shipped to the parallel-consolidation pool: the blocks
/// to merge, their resolved merge-key addresses, and the per-slab
/// `(lo, hi)` ranges of every block.
type MergeJob = (Vec<ColumnBlock>, Vec<Vec<u32>>, Vec<Vec<(usize, usize)>>);

/// Consolidations below this row count always run serially — the
/// pivot-split fan-out costs a pool spin-up and a partial-block concat,
/// which only pays for itself on large merges.
const PARALLEL_CONSOLIDATE_FLOOR: usize = 1 << 16;

/// Flatten an [`AttackVector`] into its `(kind, aux)` column encoding.
///
/// Telescope floods: `kind = proto * 3 + class` with class 0 = single
/// port (`aux` = the port), 1 = multi port (`aux` = distinct-port
/// count), 2 = no signature (`aux` = 0). Reflection events:
/// `kind = 12 + protocol`, `aux = 0`.
pub(crate) fn encode_vector(vector: AttackVector) -> (u8, u32) {
    match vector {
        AttackVector::RandomlySpoofed { proto, ports } => {
            let (class, aux) = match ports {
                PortSignature::Single(port) => (0, port as u32),
                PortSignature::Multi(n) => (1, n),
                PortSignature::None => (2, 0),
            };
            ((proto.index() * 3) as u8 + class, aux)
        }
        AttackVector::Reflection { protocol } => (KIND_REFLECTION + protocol as u8, 0),
    }
}

/// Invert [`encode_vector`].
pub(crate) fn decode_vector(kind: u8, aux: u32) -> AttackVector {
    if kind >= KIND_REFLECTION {
        AttackVector::Reflection {
            protocol: ReflectionProtocol::ALL[(kind - KIND_REFLECTION) as usize],
        }
    } else {
        AttackVector::RandomlySpoofed {
            proto: TransportProto::ALL[(kind / 3) as usize],
            ports: match kind % 3 {
                0 => PortSignature::Single(aux as u16),
                1 => PortSignature::Multi(aux),
                _ => PortSignature::None,
            },
        }
    }
}

/// Parallel column vectors holding rows sorted by `(start, victim)` —
/// either a source's consolidated block or one pending sorted run.
#[derive(Debug, Default, Clone)]
pub(crate) struct ColumnBlock {
    /// Interned victim id per row (resolve via the store's interner).
    pub(crate) victim: Vec<u32>,
    /// Event start, raw [`SimTime`] seconds.
    pub(crate) start: Vec<u64>,
    /// Event end, raw [`SimTime`] seconds.
    pub(crate) end: Vec<u64>,
    /// Flattened vector tag (see [`encode_vector`]).
    pub(crate) kind: Vec<u8>,
    /// Vector payload: single port or distinct-port count.
    pub(crate) aux: Vec<u32>,
    /// Observed packet total.
    pub(crate) packets: Vec<u64>,
    /// Observed byte total.
    pub(crate) bytes: Vec<u64>,
    /// Source-native intensity.
    pub(crate) intensity: Vec<f64>,
    /// Distinct (spoofed) source count.
    pub(crate) sources: Vec<u32>,
}

impl ColumnBlock {
    pub(crate) fn len(&self) -> usize {
        self.victim.len()
    }

    fn is_empty(&self) -> bool {
        self.victim.is_empty()
    }

    /// Decode row `i` back into the boundary [`AttackEvent`] type.
    pub(crate) fn event(&self, i: usize, victims: &Interner<Ipv4Addr>) -> AttackEvent {
        AttackEvent {
            target: victims.resolve(self.victim[i]),
            when: TimeRange::new(SimTime(self.start[i]), SimTime(self.end[i])),
            vector: decode_vector(self.kind[i], self.aux[i]),
            packets: self.packets[i],
            bytes: self.bytes[i],
            intensity_pps: self.intensity[i],
            distinct_sources: self.sources[i],
        }
    }

    /// Encode `e` onto the end of the block.
    fn push_event(&mut self, e: &AttackEvent, victim_id: u32) {
        let (kind, aux) = encode_vector(e.vector);
        self.victim.push(victim_id);
        self.start.push(e.when.start.0);
        self.end.push(e.when.end.0);
        self.kind.push(kind);
        self.aux.push(aux);
        self.packets.push(e.packets);
        self.bytes.push(e.bytes);
        self.intensity.push(e.intensity_pps);
        self.sources.push(e.distinct_sources);
    }

    /// Copy row `i` of `other` onto the end of `self`.
    pub(crate) fn push_from(&mut self, other: &ColumnBlock, i: usize, victim_id: u32) {
        self.victim.push(victim_id);
        self.start.push(other.start[i]);
        self.end.push(other.end[i]);
        self.kind.push(other.kind[i]);
        self.aux.push(other.aux[i]);
        self.packets.push(other.packets[i]);
        self.bytes.push(other.bytes[i]);
        self.intensity.push(other.intensity[i]);
        self.sources.push(other.sources[i]);
    }

    /// Append every row of `other` (already in order) onto `self`.
    fn append_block(&mut self, other: &ColumnBlock) {
        self.victim.extend_from_slice(&other.victim);
        self.start.extend_from_slice(&other.start);
        self.end.extend_from_slice(&other.end);
        self.kind.extend_from_slice(&other.kind);
        self.aux.extend_from_slice(&other.aux);
        self.packets.extend_from_slice(&other.packets);
        self.bytes.extend_from_slice(&other.bytes);
        self.intensity.extend_from_slice(&other.intensity);
        self.sources.extend_from_slice(&other.sources);
    }

    fn reserve(&mut self, additional: usize) {
        self.victim.reserve(additional);
        self.start.reserve(additional);
        self.end.reserve(additional);
        self.kind.reserve(additional);
        self.aux.reserve(additional);
        self.packets.reserve(additional);
        self.bytes.reserve(additional);
        self.intensity.reserve(additional);
        self.sources.reserve(additional);
    }

    fn memory_bytes(&self) -> usize {
        self.victim.capacity() * 4
            + self.start.capacity() * 8
            + self.end.capacity() * 8
            + self.kind.capacity()
            + self.aux.capacity() * 4
            + self.packets.capacity() * 8
            + self.bytes.capacity() * 8
            + self.intensity.capacity() * 8
            + self.sources.capacity() * 4
    }
}

/// The sort/merge key of the last row of `block`, or `None` when empty.
fn last_key(block: &ColumnBlock, victims: &Interner<Ipv4Addr>) -> Option<(u64, u32)> {
    let n = block.len();
    (n > 0).then(|| (block.start[n - 1], u32::from(victims.resolve(block.victim[n - 1]))))
}

/// Per-source incremental aggregates, maintained at ingest so every
/// Table 1 query is O(1) and never re-scans the columns.
#[derive(Debug, Default, Clone)]
struct SourceStats {
    /// Distinct victims as bits over shared interned ids.
    victims: BitSet,
    /// Distinct /24 blocks as bits over the raw 24-bit prefix space.
    blocks24: BitSet,
    /// Distinct /16 blocks as bits over the raw 16-bit prefix space.
    blocks16: BitSet,
}

impl SourceStats {
    fn admit(&mut self, addr: u32, victim_id: u32) {
        self.victims.insert(victim_id);
        self.blocks24.insert(addr >> 8);
        self.blocks16.insert(addr >> 16);
    }
}

/// Aggregate counts for one source (a row of Table 1). ASN counting needs
/// the enrichment metadata and lives in [`crate::report`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceSummary {
    /// Attack events.
    pub events: u64,
    /// Unique target IP addresses.
    pub targets: u64,
    /// Unique /24 blocks with at least one target.
    pub blocks24: u64,
    /// Unique /16 blocks with at least one target.
    pub blocks16: u64,
}

/// One source's column state: the consolidated block, the pending sorted
/// runs (oldest first), and the kind index over the consolidated block.
#[derive(Debug, Default)]
struct SourceCols {
    main: ColumnBlock,
    runs: Vec<ColumnBlock>,
    index: RunIndex,
}

impl SourceCols {
    /// Total rows including pending runs.
    fn len(&self) -> usize {
        self.main.len() + self.runs.iter().map(ColumnBlock::len).sum::<usize>()
    }

    fn memory_bytes(&self) -> usize {
        self.main.memory_bytes()
            + self.runs.iter().map(ColumnBlock::memory_bytes).sum::<usize>()
            + self.index.memory_bytes()
    }
}

/// The ingested event sets as a columnar, time-sorted store (see the
/// module docs for the sorted-run layout and consolidation lifecycle).
#[derive(Debug)]
pub struct EventStore {
    victims: Interner<Ipv4Addr>,
    tele: RwLock<SourceCols>,
    hp: RwLock<SourceCols>,
    tele_stats: SourceStats,
    hp_stats: SourceStats,
    run_threshold: usize,
    consolidate_threads: usize,
}

impl Default for EventStore {
    fn default() -> EventStore {
        EventStore::new()
    }
}

impl EventStore {
    /// Empty store.
    pub fn new() -> EventStore {
        // Register the store's run-lifecycle instruments up front so a
        // run that never consolidates still exports them (as zeros).
        dosscope_obs::counter!("store.rows");
        dosscope_obs::counter!("store.consolidations");
        dosscope_obs::counter!("store.consolidation_rows");
        EventStore {
            victims: Interner::new(),
            tele: RwLock::new(SourceCols {
                index: RunIndex::new(KINDS),
                ..SourceCols::default()
            }),
            hp: RwLock::new(SourceCols {
                index: RunIndex::new(KINDS),
                ..SourceCols::default()
            }),
            tele_stats: SourceStats::default(),
            hp_stats: SourceStats::default(),
            run_threshold: DEFAULT_RUN_THRESHOLD,
            consolidate_threads: 1,
        }
    }

    /// Cap the pending-run count: an ingest that leaves more than
    /// `threshold` runs consolidates immediately instead of lazily
    /// (0/1 both mean "consolidate after every out-of-order batch").
    pub fn set_run_threshold(&mut self, threshold: usize) {
        self.run_threshold = threshold.max(1);
    }

    /// Let consolidations of at least ~64 k rows fan out over `threads`
    /// pivot-split range merges (1 = always serial, the default). The
    /// merged bytes are identical for every thread count.
    pub fn set_consolidation_threads(&mut self, threads: usize) {
        self.consolidate_threads = threads.max(1);
    }

    /// Number of pending (unconsolidated) sorted runs across sources.
    pub fn pending_runs(&self) -> usize {
        self.tele.read().runs.len() + self.hp.read().runs.len()
    }

    /// Ingest the telescope detector's events (any order; run-appended).
    pub fn ingest_telescope(&mut self, events: Vec<AttackEvent>) {
        debug_assert!(events.iter().all(|e| e.source() == EventSource::Telescope));
        self.ingest_batch(EventSource::Telescope, &events);
    }

    /// Ingest the honeypot fleet's events (any order; run-appended).
    pub fn ingest_honeypot(&mut self, events: Vec<AttackEvent>) {
        debug_assert!(events.iter().all(|e| e.source() == EventSource::Honeypot));
        self.ingest_batch(EventSource::Honeypot, &events);
    }

    /// Ingest from borrowed events without ever cloning an
    /// [`AttackEvent`]: rows are encoded straight into the columns.
    /// This is the sharded pipeline's zero-copy handoff.
    pub fn ingest_refs<'a>(
        &mut self,
        source: EventSource,
        events: impl Iterator<Item = &'a AttackEvent>,
    ) {
        let refs: Vec<&AttackEvent> = events.collect();
        self.ingest_batch(source, &refs);
    }

    fn ingest_batch<E: Borrow<AttackEvent>>(&mut self, source: EventSource, events: &[E]) {
        if events.is_empty() {
            return;
        }
        let n = events.len();
        dosscope_obs::counter!("store.rows").add(n as u64);

        // Sort compact 16-byte (start, target, seq) keys instead of wide
        // rows: seq makes the unstable sort order-identical to the old
        // stable sort on (start, target), and the key vector is the only
        // fresh allocation the sort touches at 100M-row scale.
        let mut keys: Vec<(u64, u32, u32)> = events
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let e = e.borrow();
                (e.when.start.0, u32::from(e.target), i as u32)
            })
            .collect();
        if !keys.is_sorted() {
            keys.sort_unstable();
        }
        let first = (keys[0].0, keys[0].1);

        let (cols, stats) = match source {
            EventSource::Telescope => (self.tele.get_mut(), &mut self.tele_stats),
            EventSource::Honeypot => (self.hp.get_mut(), &mut self.hp_stats),
        };

        // Fast path: a batch that starts at or after the newest stored
        // key appends in place — onto `main` while no runs are pending
        // (today's common case: detector output arrives in time order),
        // or onto the newest run. `<=` keeps the stable tie order:
        // already-stored rows sort first on equal keys either way.
        if cols.runs.is_empty() && last_key(&cols.main, &self.victims).is_none_or(|k| k <= first)
        {
            cols.main.reserve(n);
            for &(_, addr, i) in &keys {
                let id = self.victims.intern(Ipv4Addr::from(addr));
                stats.admit(addr, id);
                let row = cols.main.len() as u32;
                cols.main.push_event(events[i as usize].borrow(), id);
                cols.index.push(cols.main.kind[row as usize], row);
            }
        } else {
            let onto_newest = cols
                .runs
                .last()
                .is_some_and(|r| last_key(r, &self.victims).is_none_or(|k| k <= first));
            if !onto_newest {
                cols.runs.push(ColumnBlock::default());
            }
            let run = cols.runs.last_mut().expect("a run was just ensured");
            run.reserve(n);
            for &(_, addr, i) in &keys {
                let id = self.victims.intern(Ipv4Addr::from(addr));
                stats.admit(addr, id);
                run.push_event(events[i as usize].borrow(), id);
            }
            // Binary-counter run maintenance: merge the two newest runs
            // while the older is no larger. Every row is merged at most
            // log2(batches) times, so total ingest traffic is
            // O(n log n) even for single-event batches, and the live
            // run count stays logarithmic.
            while cols.runs.len() >= 2
                && cols.runs[cols.runs.len() - 2].len() <= cols.runs[cols.runs.len() - 1].len()
            {
                let newer = cols.runs.pop().expect("len checked");
                let older = cols.runs.pop().expect("len checked");
                let parts = [&older, &newer];
                cols.runs.push(Self::merge_blocks(&parts, &self.victims, 1));
            }
            if cols.runs.len() >= self.run_threshold {
                Self::consolidate_cols(cols, &self.victims, self.consolidate_threads);
            }
        }

        dosscope_obs::gauge!("store.victims").set(self.victims.len() as u64);
        let pending = self.tele.get_mut().runs.len() + self.hp.get_mut().runs.len();
        dosscope_obs::gauge!("store.runs").set(pending as u64);
    }

    /// Consolidate any pending runs of `lock` into its `main` block.
    ///
    /// Reads call this before taking a view. Re-entrancy is safe by
    /// construction: a held view guard implies this already ran (views
    /// are only handed out consolidated) and ingest requires `&mut
    /// self`, so the read-check below can never race a run append.
    fn ensure(&self, lock: &RwLock<SourceCols>) {
        if lock.read().runs.is_empty() {
            return;
        }
        let mut cols = lock.write();
        // Re-check under the write lock: another reader may have
        // consolidated between our read probe and the write acquire.
        Self::consolidate_cols(&mut cols, &self.victims, self.consolidate_threads);
    }

    /// Force both sources' pending runs into their consolidated blocks
    /// (reads do this lazily; the bench calls it to time ingest
    /// end-to-end, and the sharded store calls it per shard worker so
    /// consolidation parallelizes before the snapshot merge).
    pub fn consolidate(&self) {
        self.ensure(&self.tele);
        self.ensure(&self.hp);
    }

    fn consolidate_cols(cols: &mut SourceCols, victims: &Interner<Ipv4Addr>, threads: usize) {
        if cols.runs.is_empty() {
            return;
        }
        let total = cols.len();
        dosscope_obs::counter!("store.consolidations").inc();
        dosscope_obs::counter!("store.consolidation_rows").add(total as u64);
        if cols.main.is_empty() && cols.runs.len() == 1 {
            // Single-run adoption: the run becomes `main` by move — the
            // single-out-of-order-batch case costs no row copies.
            cols.main = cols.runs.pop().expect("len checked");
        } else {
            let parts: Vec<&ColumnBlock> = std::iter::once(&cols.main)
                .filter(|b| !b.is_empty())
                .chain(cols.runs.iter())
                .collect();
            cols.main = Self::merge_blocks(&parts, victims, threads);
            cols.runs.clear();
        }
        // The kind index only covers consolidated rows; rebuild it over
        // the merged block.
        cols.index.clear();
        for (row, &kind) in cols.main.kind.iter().enumerate() {
            cols.index.push(kind, row as u32);
        }
    }

    /// k-way merge sorted blocks (oldest first — ties resolve toward the
    /// lower part index, i.e. earlier-ingested rows) into one block.
    /// Victim ids are already final, so rows copy without re-interning.
    fn merge_blocks(
        parts: &[&ColumnBlock],
        victims: &Interner<Ipv4Addr>,
        threads: usize,
    ) -> ColumnBlock {
        // Resolve each part's merge keys once: workers (and the hot
        // serial loop) compare plain (u64, u32) pairs, never the
        // interner.
        let addrs: Vec<Vec<u32>> = parts
            .iter()
            .map(|b| {
                b.victim
                    .iter()
                    .map(|&id| u32::from(victims.resolve(id)))
                    .collect()
            })
            .collect();
        let total: usize = parts.iter().map(|b| b.len()).sum();
        if threads > 1 && total >= PARALLEL_CONSOLIDATE_FLOOR {
            Self::merge_blocks_parallel(parts, &addrs, threads)
        } else {
            let ranges: Vec<(usize, usize)> = parts.iter().map(|b| (0, b.len())).collect();
            Self::merge_range(parts, &addrs, &ranges, total)
        }
    }

    /// Merge one aligned key range of every part via the loser tree.
    fn merge_range(
        parts: &[&ColumnBlock],
        addrs: &[Vec<u32>],
        ranges: &[(usize, usize)],
        total: usize,
    ) -> ColumnBlock {
        let mut out = ColumnBlock::default();
        out.reserve(total);
        let mut cursors: Vec<usize> = ranges.iter().map(|&(lo, _)| lo).collect();
        let heads: Vec<Option<(u64, u32)>> = parts
            .iter()
            .zip(ranges)
            .enumerate()
            .map(|(k, (b, &(lo, hi)))| (lo < hi).then(|| (b.start[lo], addrs[k][lo])))
            .collect();
        let mut tree = LoserTree::new(heads);
        while let Some(k) = tree.winner() {
            let i = cursors[k];
            out.push_from(parts[k], i, parts[k].victim[i]);
            cursors[k] += 1;
            let next = (cursors[k] < ranges[k].1)
                .then(|| (parts[k].start[cursors[k]], addrs[k][cursors[k]]));
            tree.replace(k, next);
        }
        out
    }

    /// Pivot-split parallel consolidation: cut the key space at sampled
    /// start-time pivots, merge each slab on a transient [`ShardPool`]
    /// worker, concatenate in pivot order. Every cut is a lower bound
    /// (`key < pivot` goes left), so equal keys stay in one slab and the
    /// concatenation reproduces the serial stable merge byte-for-byte
    /// regardless of thread count.
    fn merge_blocks_parallel(
        parts: &[&ColumnBlock],
        addrs: &[Vec<u32>],
        threads: usize,
    ) -> ColumnBlock {
        let total: usize = parts.iter().map(|b| b.len()).sum();
        let slabs = threads.min(total.max(1));
        // Sample pivots from the largest part — the best single proxy
        // for the merged key distribution.
        let largest = (0..parts.len())
            .max_by_key(|&k| parts[k].len())
            .expect("parts is non-empty");
        let pivots: Vec<(u64, u32)> = (1..slabs)
            .map(|j| {
                let i = j * parts[largest].len() / slabs;
                (parts[largest].start[i], addrs[largest][i])
            })
            .collect();
        // Per part: slab boundaries via lower-bound partition points.
        let ranges: Vec<Vec<(usize, usize)>> = (0..slabs)
            .map(|s| {
                parts
                    .iter()
                    .enumerate()
                    .map(|(k, b)| {
                        let lo = match s {
                            0 => 0,
                            _ => lower_bound(b, &addrs[k], pivots[s - 1]),
                        };
                        let hi = match pivots.get(s) {
                            Some(&p) => lower_bound(b, &addrs[k], p),
                            None => b.len(),
                        };
                        (lo, hi)
                    })
                    .collect()
            })
            .collect();
        // Ship owned copies of the inputs to the 'static pool workers.
        // (Clones are column memcpys; the alternative — scoped borrows —
        // is not something the long-lived ShardPool can express.)
        let owned: Vec<ColumnBlock> = parts.iter().map(|&b| b.clone()).collect();
        let job: MergeJob = (owned, addrs.to_vec(), ranges);
        let mut pool: ShardPool<MergeJob, ColumnBlock, ColumnBlock> = ShardPool::new(
            "consolidate",
            slabs,
            slabs,
            1,
            |_| ColumnBlock::default(),
            |out, slab, _slabs, job: &MergeJob| {
                let (parts, addrs, ranges) = job;
                let refs: Vec<&ColumnBlock> = parts.iter().collect();
                let span: usize = ranges[slab].iter().map(|&(lo, hi)| hi - lo).sum();
                *out = EventStore::merge_range(&refs, addrs, &ranges[slab], span);
            },
            |out| out,
        );
        pool.dispatch(job).expect("fresh pool accepts work");
        let partials = pool.shutdown().expect("fresh pool shuts down once");
        let mut merged = ColumnBlock::default();
        merged.reserve(total);
        for part in &partials {
            merged.append_block(part);
        }
        merged
    }

    /// Telescope events, sorted by start (consolidates pending runs).
    pub fn telescope(&self) -> EventsView<'_> {
        self.view_of(&self.tele)
    }

    /// Honeypot events, sorted by start (consolidates pending runs).
    pub fn honeypot(&self) -> EventsView<'_> {
        self.view_of(&self.hp)
    }

    fn view_of<'a>(&'a self, lock: &'a RwLock<SourceCols>) -> EventsView<'a> {
        self.ensure(lock);
        EventsView {
            lock,
            cols: lock.read(),
            victims: &self.victims,
        }
    }

    /// Both sources chained (telescope first; not globally sorted).
    pub fn all(&self) -> impl Iterator<Item = AttackEvent> + '_ {
        self.telescope().into_iter().chain(self.honeypot())
    }

    /// Events of one source.
    pub fn of(&self, source: EventSource) -> EventsView<'_> {
        match source {
            EventSource::Telescope => self.telescope(),
            EventSource::Honeypot => self.honeypot(),
        }
    }

    /// Total event count (pending runs included).
    pub fn len(&self) -> usize {
        self.tele.read().len() + self.hp.read().len()
    }

    /// True when nothing was ingested.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-source aggregates over an arbitrary event set. Works for both
    /// borrowed and owned event iterators.
    pub fn summarize<E: Borrow<AttackEvent>>(events: impl Iterator<Item = E>) -> SourceSummary {
        let mut targets: FastSet<Ipv4Addr> = FastSet::default();
        let mut blocks24: FastSet<Prefix24> = FastSet::default();
        let mut blocks16: FastSet<Prefix16> = FastSet::default();
        let mut n = 0u64;
        for e in events {
            let e = e.borrow();
            n += 1;
            targets.insert(e.target);
            blocks24.insert(Prefix24::of(e.target));
            blocks16.insert(Prefix16::of(e.target));
        }
        SourceSummary {
            events: n,
            targets: targets.len() as u64,
            blocks24: blocks24.len() as u64,
            blocks16: blocks16.len() as u64,
        }
    }

    /// The Table 1 aggregate for one source — O(1), maintained at
    /// ingest, and valid whether or not runs are consolidated.
    pub fn summary(&self, source: EventSource) -> SourceSummary {
        let (lock, stats) = match source {
            EventSource::Telescope => (&self.tele, &self.tele_stats),
            EventSource::Honeypot => (&self.hp, &self.hp_stats),
        };
        SourceSummary {
            events: lock.read().len() as u64,
            targets: stats.victims.len() as u64,
            blocks24: stats.blocks24.len() as u64,
            blocks16: stats.blocks16.len() as u64,
        }
    }

    /// The Table 1 aggregate for the combined data: union popcounts over
    /// the per-source bitsets — no re-scan of either column block.
    pub fn summary_combined(&self) -> SourceSummary {
        SourceSummary {
            events: self.len() as u64,
            targets: self.tele_stats.victims.union_count(&self.hp_stats.victims) as u64,
            blocks24: self.tele_stats.blocks24.union_count(&self.hp_stats.blocks24) as u64,
            blocks16: self.tele_stats.blocks16.union_count(&self.hp_stats.blocks16) as u64,
        }
    }

    /// Unique targets common to both sources (the paper's 282 k): an
    /// AND-popcount over the shared-interner victim bitsets.
    pub fn common_targets(&self) -> u64 {
        self.tele_stats
            .victims
            .intersection_count(&self.hp_stats.victims) as u64
    }

    /// Every distinct victim of one source, in interning (first-seen)
    /// order — the columnar feed for per-target enrichment counts.
    pub fn distinct_targets(&self, source: EventSource) -> impl Iterator<Item = Ipv4Addr> + '_ {
        let stats = match source {
            EventSource::Telescope => &self.tele_stats,
            EventSource::Honeypot => &self.hp_stats,
        };
        stats.victims.iter().map(|id| self.victims.resolve(id))
    }

    /// Every distinct victim across both sources.
    pub fn distinct_targets_combined(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        let mut union = self.tele_stats.victims.clone();
        union.union_with(&self.hp_stats.victims);
        union
            .iter()
            .map(|id| self.victims.resolve(id))
            .collect::<Vec<_>>()
            .into_iter()
    }

    /// The full attack history of one victim, both sources merged by
    /// start time (telescope first on ties), decoded to events.
    pub fn history(&self, target: Ipv4Addr) -> Vec<AttackEvent> {
        let Some(id) = self.victims.get(target) else {
            return Vec::new();
        };
        let tele = self.block(EventSource::Telescope);
        let hp = self.block(EventSource::Honeypot);
        let collect = |block: &ColumnBlock| -> Vec<usize> {
            (0..block.len()).filter(|&i| block.victim[i] == id).collect()
        };
        let t_rows = collect(&tele);
        let h_rows = collect(&hp);
        let mut out = Vec::with_capacity(t_rows.len() + h_rows.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < t_rows.len() || j < h_rows.len() {
            let take_tele = j >= h_rows.len()
                || (i < t_rows.len() && tele.start[t_rows[i]] <= hp.start[h_rows[j]]);
            if take_tele {
                out.push(tele.event(t_rows[i], &self.victims));
                i += 1;
            } else {
                out.push(hp.event(h_rows[j], &self.victims));
                j += 1;
            }
        }
        out
    }

    /// Approximate heap footprint of the store in bytes: column vectors
    /// (consolidated and pending runs), interner, indexes and aggregate
    /// bitsets. This is the "peak working set" the scale sweep records.
    pub fn memory_bytes(&self) -> usize {
        self.tele.read().memory_bytes()
            + self.hp.read().memory_bytes()
            + self.victims.memory_bytes()
            + self.tele_stats.victims.memory_bytes()
            + self.tele_stats.blocks24.memory_bytes()
            + self.tele_stats.blocks16.memory_bytes()
            + self.hp_stats.victims.memory_bytes()
            + self.hp_stats.blocks24.memory_bytes()
            + self.hp_stats.blocks16.memory_bytes()
    }

    /// Merge per-shard stores into one canonical store by a loser-tree
    /// walk over the shards' consolidated column blocks — no event
    /// struct is decoded or cloned on the way.
    ///
    /// Rows are taken in ascending `(start, victim)` order. Equal keys
    /// can never sit in different shards (a victim belongs to exactly
    /// one shard), so the merge is deterministic for *any* shard
    /// enumeration order and reproduces the serial store exactly.
    pub(crate) fn merge_shards(shards: &[EventStore]) -> EventStore {
        let mut out = EventStore::new();
        out.absorb(shards, EventSource::Telescope);
        out.absorb(shards, EventSource::Honeypot);
        out
    }

    fn absorb(&mut self, shards: &[EventStore], source: EventSource) {
        // `block` consolidates each shard before the walk, so the merge
        // sees exactly one sorted block per shard.
        let parts: Vec<BlockRef<'_>> = shards.iter().map(|s| s.block(source)).collect();
        let addrs: Vec<Vec<u32>> = shards
            .iter()
            .zip(&parts)
            .map(|(s, b)| {
                b.victim
                    .iter()
                    .map(|&id| u32::from(s.victims.resolve(id)))
                    .collect()
            })
            .collect();
        let total: usize = parts.iter().map(|b| b.len()).sum();
        let (cols, stats) = match source {
            EventSource::Telescope => (self.tele.get_mut(), &mut self.tele_stats),
            EventSource::Honeypot => (self.hp.get_mut(), &mut self.hp_stats),
        };
        cols.main.reserve(total);
        let mut cursors = vec![0usize; parts.len()];
        let heads: Vec<Option<(u64, u32)>> = parts
            .iter()
            .enumerate()
            .map(|(k, b)| (!b.is_empty()).then(|| (b.start[0], addrs[k][0])))
            .collect();
        let mut tree = LoserTree::new(heads);
        while let Some(k) = tree.winner() {
            let i = cursors[k];
            cursors[k] += 1;
            let addr = addrs[k][i];
            let id = self.victims.intern(Ipv4Addr::from(addr));
            stats.admit(addr, id);
            cols.index.push(parts[k].kind[i], cols.main.len() as u32);
            cols.main.push_from(&parts[k], i, id);
            let next = (cursors[k] < parts[k].len())
                .then(|| (parts[k].start[cursors[k]], addrs[k][cursors[k]]));
            tree.replace(k, next);
        }
    }

    /// The consolidated column block of one source (crate-internal scan
    /// surface; consolidates pending runs first).
    pub(crate) fn block(&self, source: EventSource) -> BlockRef<'_> {
        let lock = match source {
            EventSource::Telescope => &self.tele,
            EventSource::Honeypot => &self.hp,
        };
        self.ensure(lock);
        BlockRef(lock.read())
    }

    /// The kind-predicate index of one source (consolidates first — the
    /// index only covers consolidated rows).
    pub(crate) fn kind_index(&self, source: EventSource) -> IndexRef<'_> {
        let lock = match source {
            EventSource::Telescope => &self.tele,
            EventSource::Honeypot => &self.hp,
        };
        self.ensure(lock);
        IndexRef(lock.read())
    }

    /// The shared victim interner.
    pub(crate) fn victim_ids(&self) -> &Interner<Ipv4Addr> {
        &self.victims
    }
}

/// Guard handing out one source's consolidated [`ColumnBlock`].
pub(crate) struct BlockRef<'a>(RwLockReadGuard<'a, SourceCols>);

impl Deref for BlockRef<'_> {
    type Target = ColumnBlock;

    fn deref(&self) -> &ColumnBlock {
        &self.0.main
    }
}

/// Guard handing out one source's kind-predicate [`RunIndex`].
pub(crate) struct IndexRef<'a>(RwLockReadGuard<'a, SourceCols>);

impl Deref for IndexRef<'_> {
    type Target = RunIndex;

    fn deref(&self) -> &RunIndex {
        &self.0.index
    }
}

/// A borrowed, zero-copy view of one source's events in store order.
///
/// The view decodes rows into owned [`AttackEvent`]s on access: `get`
/// and iteration hand back values, not references, so call sites that
/// previously iterated `&[AttackEvent]` keep working with at most a
/// dropped `&`/`.cloned()`. Equality against other views and against
/// event slices compares decoded rows, which keeps the serial-vs-sharded
/// equivalence assertions byte-for-byte meaningful.
///
/// A view pins the source consolidated: it holds a read guard on the
/// column state (cloning a view re-acquires a guard), and ingest takes
/// `&mut self`, so the rows a view exposes can never shift under it.
pub struct EventsView<'a> {
    lock: &'a RwLock<SourceCols>,
    cols: RwLockReadGuard<'a, SourceCols>,
    victims: &'a Interner<Ipv4Addr>,
}

impl Clone for EventsView<'_> {
    fn clone(&self) -> Self {
        EventsView {
            lock: self.lock,
            cols: self.lock.read(),
            victims: self.victims,
        }
    }
}

impl<'a> EventsView<'a> {
    /// Number of events in the view.
    pub fn len(&self) -> usize {
        self.cols.main.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decode the event at row `i` (panics when out of bounds).
    pub fn get(&self, i: usize) -> AttackEvent {
        self.cols.main.event(i, self.victims)
    }

    /// Iterate the events in store order, decoding each row.
    pub fn iter(&self) -> EventsIter<'a> {
        EventsIter {
            back: self.len(),
            view: self.clone(),
            next: 0,
        }
    }

    /// Materialize the view into an owned vector.
    pub fn to_vec(&self) -> Vec<AttackEvent> {
        self.iter().collect()
    }
}

/// Owning-item iterator over an [`EventsView`].
#[derive(Clone)]
pub struct EventsIter<'a> {
    view: EventsView<'a>,
    next: usize,
    back: usize,
}

impl Iterator for EventsIter<'_> {
    type Item = AttackEvent;

    fn next(&mut self) -> Option<AttackEvent> {
        if self.next >= self.back {
            return None;
        }
        let e = self.view.get(self.next);
        self.next += 1;
        Some(e)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.back - self.next;
        (n, Some(n))
    }
}

impl ExactSizeIterator for EventsIter<'_> {}

impl DoubleEndedIterator for EventsIter<'_> {
    fn next_back(&mut self) -> Option<AttackEvent> {
        if self.next >= self.back {
            return None;
        }
        self.back -= 1;
        Some(self.view.get(self.back))
    }
}

impl<'a> IntoIterator for EventsView<'a> {
    type Item = AttackEvent;
    type IntoIter = EventsIter<'a>;

    fn into_iter(self) -> EventsIter<'a> {
        self.iter()
    }
}

impl<'a> IntoIterator for &EventsView<'a> {
    type Item = AttackEvent;
    type IntoIter = EventsIter<'a>;

    fn into_iter(self) -> EventsIter<'a> {
        self.iter()
    }
}

impl PartialEq for EventsView<'_> {
    fn eq(&self, other: &EventsView<'_>) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl PartialEq<[AttackEvent]> for EventsView<'_> {
    fn eq(&self, other: &[AttackEvent]) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == *b)
    }
}

impl PartialEq<Vec<AttackEvent>> for EventsView<'_> {
    fn eq(&self, other: &Vec<AttackEvent>) -> bool {
        *self == other[..]
    }
}

impl PartialEq<&[AttackEvent]> for EventsView<'_> {
    fn eq(&self, other: &&[AttackEvent]) -> bool {
        *self == **other
    }
}

impl std::fmt::Debug for EventsView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// Lower bound of `pivot` in `block`'s `(start, addr)` key sequence:
/// the first row whose key is `>= pivot`.
fn lower_bound(block: &ColumnBlock, addrs: &[u32], pivot: (u64, u32)) -> usize {
    let mut lo = 0usize;
    let mut hi = block.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if (block.start[mid], addrs[mid]) < pivot {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosscope_types::{
        AttackVector, PortSignature, ReflectionProtocol, SimTime, TimeRange, TransportProto,
    };

    fn tele(ip: &str, start: u64) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(SimTime(start), SimTime(start + 100)),
            vector: AttackVector::RandomlySpoofed {
                proto: TransportProto::Tcp,
                ports: PortSignature::Single(80),
            },
            packets: 100,
            bytes: 4000,
            intensity_pps: 1.0,
            distinct_sources: 10,
        }
    }

    fn hp(ip: &str, start: u64) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(SimTime(start), SimTime(start + 100)),
            vector: AttackVector::Reflection {
                protocol: ReflectionProtocol::Ntp,
            },
            packets: 200,
            bytes: 8000,
            intensity_pps: 5.0,
            distinct_sources: 4,
        }
    }

    #[test]
    fn summaries() {
        let mut s = EventStore::new();
        s.ingest_telescope(vec![
            tele("10.0.0.1", 50),
            tele("10.0.0.2", 10),
            tele("10.0.0.1", 500),
        ]);
        s.ingest_honeypot(vec![hp("10.0.1.1", 30), hp("10.0.0.1", 90)]);

        let t = s.summary(EventSource::Telescope);
        assert_eq!(t.events, 3);
        assert_eq!(t.targets, 2);
        assert_eq!(t.blocks24, 1);
        assert_eq!(t.blocks16, 1);

        let h = s.summary(EventSource::Honeypot);
        assert_eq!(h.events, 2);
        assert_eq!(h.targets, 2);
        assert_eq!(h.blocks24, 2);

        let c = s.summary_combined();
        assert_eq!(c.events, 5);
        assert_eq!(c.targets, 3, "overlapping target counted once");
        assert_eq!(s.common_targets(), 1);
    }

    #[test]
    fn ingest_sorts_by_start() {
        let mut s = EventStore::new();
        s.ingest_telescope(vec![tele("10.0.0.1", 500), tele("10.0.0.2", 10)]);
        let events = s.telescope().to_vec();
        assert!(events.windows(2).all(|w| w[0].when.start <= w[1].when.start));
    }

    #[test]
    fn vector_encoding_roundtrips() {
        let mut vectors = vec![];
        for proto in TransportProto::ALL {
            vectors.push(AttackVector::RandomlySpoofed {
                proto,
                ports: PortSignature::Single(443),
            });
            vectors.push(AttackVector::RandomlySpoofed {
                proto,
                ports: PortSignature::Multi(17),
            });
            vectors.push(AttackVector::RandomlySpoofed {
                proto,
                ports: PortSignature::None,
            });
        }
        for protocol in ReflectionProtocol::ALL {
            vectors.push(AttackVector::Reflection { protocol });
        }
        let mut seen = std::collections::HashSet::new();
        for v in vectors {
            let (kind, aux) = encode_vector(v);
            assert!((kind as usize) < KINDS, "kind codes stay in range");
            assert!(seen.insert((kind, aux)), "codes are distinct");
            assert_eq!(decode_vector(kind, aux), v, "decode inverts encode");
        }
    }

    #[test]
    fn views_decode_rows_exactly() {
        let mut s = EventStore::new();
        let batch = vec![tele("10.0.0.1", 500), tele("10.0.0.2", 10)];
        s.ingest_telescope(batch.clone());
        let mut expect = batch;
        expect.sort_by_key(|e| (e.when.start, e.target));
        assert_eq!(s.telescope(), expect, "view equals the sorted rows");
        assert_eq!(s.telescope().get(0), expect[0]);
        assert_eq!(s.telescope().to_vec(), expect);
        assert_eq!(s.telescope().iter().len(), 2);
        let rev: Vec<AttackEvent> = s.telescope().iter().rev().collect();
        assert_eq!(rev[1], expect[0], "double-ended iteration");
    }

    #[test]
    fn out_of_order_ingest_matches_row_semantics() {
        // Second batch starts before the first ends: lands as a pending
        // run, and the lazy consolidation must reproduce the old
        // extend-and-stable-sort byte-for-byte.
        let mut s = EventStore::new();
        let b1 = vec![tele("10.0.0.9", 300), tele("10.0.0.1", 700)];
        let b2 = vec![tele("10.0.0.3", 100), tele("10.0.0.1", 300), tele("10.0.0.9", 300)];
        s.ingest_telescope(b1.clone());
        s.ingest_telescope(b2.clone());
        let mut rows: Vec<AttackEvent> = b1;
        rows.extend(b2);
        rows.sort_by_key(|e| (e.when.start, e.target));
        assert_eq!(s.telescope(), rows);
    }

    #[test]
    fn in_order_batches_never_open_runs() {
        let mut s = EventStore::new();
        s.ingest_telescope(vec![tele("10.0.0.1", 10), tele("10.0.0.2", 20)]);
        s.ingest_telescope(vec![tele("10.0.0.3", 20), tele("10.0.0.4", 30)]);
        s.ingest_telescope(vec![tele("10.0.0.9", 30)]);
        assert_eq!(s.pending_runs(), 0, "in-order appends bypass the run stack");
        assert_eq!(s.telescope().len(), 5);
    }

    #[test]
    fn out_of_order_batches_stack_runs_until_read() {
        let mut s = EventStore::new();
        s.ingest_telescope(vec![tele("10.0.0.1", 1000)]);
        s.ingest_telescope(vec![tele("10.0.0.1", 500)]);
        assert_eq!(s.pending_runs(), 1, "out-of-order batch opened a run");
        // Summaries never force consolidation.
        assert_eq!(s.summary(EventSource::Telescope).events, 2);
        assert_eq!(s.pending_runs(), 1);
        // A view does.
        let starts: Vec<u64> = s.telescope().iter().map(|e| e.when.start.0).collect();
        assert_eq!(starts, vec![500, 1000]);
        assert_eq!(s.pending_runs(), 0, "read consolidated the runs");
    }

    #[test]
    fn run_threshold_forces_consolidation_at_ingest() {
        let mut s = EventStore::new();
        s.set_run_threshold(1);
        s.ingest_telescope(vec![tele("10.0.0.1", 1000)]);
        s.ingest_telescope(vec![tele("10.0.0.1", 500)]);
        assert_eq!(s.pending_runs(), 0, "threshold 1 consolidates every batch");
        assert_eq!(s.telescope().len(), 2);
    }

    #[test]
    fn binary_counter_keeps_run_count_logarithmic() {
        let mut s = EventStore::new();
        s.set_run_threshold(usize::MAX >> 1);
        // 64 adversarial single-event batches in strictly reverse time
        // order: every batch opens a run, the counter keeps only
        // O(log n) of them alive.
        for i in (0..64u64).rev() {
            s.ingest_telescope(vec![tele("10.0.0.7", 10 + i)]);
        }
        assert!(
            s.pending_runs() <= 7,
            "{} runs pending after 64 singleton batches",
            s.pending_runs()
        );
        let starts: Vec<u64> = s.telescope().iter().map(|e| e.when.start.0).collect();
        assert_eq!(starts, (10..74).collect::<Vec<u64>>());
    }

    #[test]
    fn parallel_consolidation_matches_serial() {
        // Enough rows to cross the parallel floor, interleaved so the
        // merge actually interleaves its inputs.
        let n = (PARALLEL_CONSOLIDATE_FLOOR / 2) as u64 + 7;
        let evens: Vec<AttackEvent> = (0..n)
            .map(|i| tele(&format!("10.{}.{}.1", i % 40, i % 9), 2 * i))
            .collect();
        let odds: Vec<AttackEvent> = (0..n)
            .map(|i| tele(&format!("10.{}.{}.2", i % 17, i % 13), 2 * i + 1))
            .collect();
        let build = |threads: usize| {
            let mut s = EventStore::new();
            s.set_consolidation_threads(threads);
            s.ingest_telescope(evens.clone());
            s.ingest_telescope(odds.clone());
            s.consolidate();
            s
        };
        let serial = build(1);
        for threads in [2, 3, 8] {
            let par = build(threads);
            assert_eq!(par.telescope(), serial.telescope(), "{threads} threads");
        }
    }

    #[test]
    fn history_merges_sources_by_start() {
        let mut s = EventStore::new();
        s.ingest_telescope(vec![tele("10.0.0.1", 50), tele("10.0.0.2", 60), tele("10.0.0.1", 500)]);
        s.ingest_honeypot(vec![hp("10.0.0.1", 90), hp("10.0.0.1", 50)]);
        let h = s.history("10.0.0.1".parse().unwrap());
        assert_eq!(h.len(), 4);
        let starts: Vec<u64> = h.iter().map(|e| e.when.start.0).collect();
        assert_eq!(starts, vec![50, 50, 90, 500]);
        assert_eq!(h[0].source(), EventSource::Telescope, "telescope wins ties");
        assert!(s.history("192.168.0.1".parse().unwrap()).is_empty());
    }

    #[test]
    fn empty_store() {
        let s = EventStore::new();
        assert!(s.is_empty());
        assert_eq!(s.summary_combined(), SourceSummary::default());
        assert_eq!(s.common_targets(), 0);
        assert_eq!(s.telescope().len(), 0);
        assert!(s.all().next().is_none());
        assert_eq!(s.pending_runs(), 0);
    }

    #[test]
    fn memory_accounting_is_nonzero() {
        let mut s = EventStore::new();
        s.ingest_telescope(vec![tele("10.0.0.1", 50)]);
        assert!(s.memory_bytes() > 0);
    }
}
