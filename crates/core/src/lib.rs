//! # dosscope-core
//!
//! The paper's primary contribution: a framework that fuses heterogeneous
//! DoS measurement data sets — telescope backscatter events, honeypot
//! reflection events, active DNS snapshots, DPS adoption data and
//! geo/routing metadata — into a macroscopic characterization of the DoS
//! ecosystem.
//!
//! The module layout follows the paper's analysis sections:
//!
//! * [`store`] — event ingestion and the Table 1 aggregates;
//! * [`enrich`] — geolocation and prefix-to-AS enrichment of targets;
//! * [`timeseries`] — the daily activity series of Figures 1 and 5;
//! * [`correlate`] — joint-attack correlation between the two event data
//!   sets (Section 4's 282 k common / 137 k joint targets);
//! * [`webimpact`] — the Web-association join of Section 5 (Figures 6, 7);
//! * [`migration`] — the DPS-migration analyses of Section 6 (Figures
//!   8-11, Table 9);
//! * [`mailimpact`] — the Section 8 extension: attacks on shared mail and
//!   authoritative-DNS infrastructure;
//! * [`coverage`] — the Section 8 extension: fusing a third attack data
//!   source (botnet C&C monitoring) and measuring the blind spot of the
//!   two primary infrastructures;
//! * [`streaming`] — the near-realtime fusion mode the paper's conclusion
//!   calls for: incremental ingestion with always-current aggregates;
//! * [`sharded`] — target-sharded variants of the store and the streaming
//!   fusion whose per-shard accumulators merge into the exact serial
//!   aggregates (the fusion end of the parallel pipeline; see DESIGN.md's
//!   concurrency model);
//! * [`report`] — typed table/figure structures with text rendering, one
//!   per published table and figure.
//!
//! The analysis consumes detector outputs and measurement data sets only;
//! it has no access to the generator's ground truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
pub mod correlate;
pub mod coverage;
pub mod enrich;
pub mod mailimpact;
pub mod migration;
pub mod report;
pub mod sharded;
pub mod store;
pub mod streaming;
pub mod timeseries;
pub mod webimpact;

pub use correlate::{JointAnalysis, JointStats};
pub use enrich::{EnrichedEvent, Enricher};
pub use sharded::{route_events, ShardedEventStore, ShardedFusion};
pub use streaming::{FusionState, StreamingFusion, StreamingSnapshot};
pub use store::{EventStore, EventsIter, EventsView, SourceSummary};

use dosscope_dns::{OrgCatalog, ZoneStore};
use dosscope_dps::DpsDataset;
use dosscope_geo::{AsDb, GeoDb};
use dosscope_types::DayIndex;

/// The assembled framework: events plus every side data set the analyses
/// join against.
pub struct Framework<'a> {
    /// Ingested events (both sources), borrowed: assembling a framework
    /// never copies the event lists, so it is free to build one per
    /// analysis over the same store.
    pub store: &'a EventStore,
    /// Geolocation database.
    pub geo: &'a GeoDb,
    /// Prefix-to-AS database.
    pub asdb: &'a AsDb,
    /// Active DNS measurement (None disables Web/migration analyses).
    pub zone: Option<&'a ZoneStore>,
    /// Organisation catalog for hoster identification.
    pub catalog: Option<&'a OrgCatalog>,
    /// DPS adoption data set.
    pub dps: Option<&'a DpsDataset>,
    /// Window length in days.
    pub days: u32,
}

impl<'a> Framework<'a> {
    /// Assemble a framework over ingested events and metadata.
    pub fn new(store: &'a EventStore, geo: &'a GeoDb, asdb: &'a AsDb, days: u32) -> Framework<'a> {
        Framework {
            store,
            geo,
            asdb,
            zone: None,
            catalog: None,
            dps: None,
            days,
        }
    }

    /// Attach the active DNS measurement and organisation catalog
    /// (enables the Section 5 analyses).
    pub fn with_dns(mut self, zone: &'a ZoneStore, catalog: &'a OrgCatalog) -> Self {
        self.zone = Some(zone);
        self.catalog = Some(catalog);
        self
    }

    /// Attach the DPS adoption data set (enables the Section 6 analyses).
    pub fn with_dps(mut self, dps: &'a DpsDataset) -> Self {
        self.dps = Some(dps);
        self
    }

    /// The last day of the window.
    pub fn last_day(&self) -> DayIndex {
        DayIndex(self.days.saturating_sub(1))
    }
}
