//! Attack effects on DPS migration (Section 6): the Web-site taxonomy of
//! Figure 8, the attack-frequency comparison of Figure 9, the normalized
//! intensity distribution of Table 9 and the migration-delay analyses of
//! Figures 10 and 11.

use crate::webimpact::WebImpact;
use crate::Framework;
use dosscope_types::{DayIndex, Ecdf, FrozenEcdf};

/// The Figure 8 classification tree (counts of Web sites per node).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Taxonomy {
    /// All Web sites over the window.
    pub total: u64,
    /// Sites on attacked IPs at least once ("attack observed").
    pub attacked: u64,
    /// Attacked ∧ already a DPS customer when first seen.
    pub attacked_preexisting: u64,
    /// Attacked ∧ migrated to a DPS after an observed attack.
    pub attacked_migrating: u64,
    /// Attacked ∧ never protected.
    pub attacked_non_migrating: u64,
    /// Never observed under attack.
    pub unattacked: u64,
    /// Unattacked ∧ preexisting customer.
    pub unattacked_preexisting: u64,
    /// Unattacked ∧ migrated during the window.
    pub unattacked_migrating: u64,
    /// Unattacked ∧ never protected.
    pub unattacked_non_migrating: u64,
}

impl Taxonomy {
    /// Fraction helper: `num/den`, 0 when empty.
    pub fn frac(num: u64, den: u64) -> f64 {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    }

    /// Share of sites ever attacked (64 % in the paper).
    pub fn attacked_share(&self) -> f64 {
        Self::frac(self.attacked, self.total)
    }

    /// Preexisting share among attacked (18.6 %) and unattacked (0.89 %).
    pub fn preexisting_shares(&self) -> (f64, f64) {
        (
            Self::frac(self.attacked_preexisting, self.attacked),
            Self::frac(self.unattacked_preexisting, self.unattacked),
        )
    }

    /// Migrating share among attacked non-preexisting (4.31 %) and
    /// unattacked non-preexisting (3.32 %).
    pub fn migrating_shares(&self) -> (f64, f64) {
        (
            Self::frac(
                self.attacked_migrating,
                self.attacked - self.attacked_preexisting,
            ),
            Self::frac(
                self.unattacked_migrating,
                self.unattacked - self.unattacked_preexisting,
            ),
        )
    }

    /// Protected-ever share among attacked (22.1 %) vs unattacked (4.2 %).
    pub fn protected_shares(&self) -> (f64, f64) {
        (
            Self::frac(
                self.attacked_preexisting + self.attacked_migrating,
                self.attacked,
            ),
            Self::frac(
                self.unattacked_preexisting + self.unattacked_migrating,
                self.unattacked,
            ),
        )
    }
}

/// The Section 6 analysis results.
pub struct MigrationAnalysis {
    /// Figure 8.
    pub taxonomy: Taxonomy,
    /// Figure 9 top: attacks per attacked site.
    pub freq_all: FrozenEcdf,
    /// Figure 9 bottom: attacks per migrating-after-attack site.
    pub freq_migrating: FrozenEcdf,
    /// Site-weighted normalized intensity distribution (Table 9).
    pub intensity_over_sites: FrozenEcdf,
    /// Figure 10: migration delay (days) for all migrating sites and per
    /// intensity class.
    pub delay_all: FrozenEcdf,
    /// Top 5 % intensity class.
    pub delay_top5: FrozenEcdf,
    /// Top 1 % intensity class.
    pub delay_top1: FrozenEcdf,
    /// Top 0.1 % intensity class.
    pub delay_top01: FrozenEcdf,
    /// Figure 11: delays following honeypot attacks of ≥ 4 h duration.
    pub delay_long4h: FrozenEcdf,
}

impl MigrationAnalysis {
    /// Run the migration analyses. Needs both the Web-impact results and
    /// the DPS data set; returns `None` when either is missing.
    pub fn analyze(fw: &Framework<'_>, web: &WebImpact) -> Option<MigrationAnalysis> {
        let zone = fw.zone?;
        let dps = fw.dps?;

        let mut tax = Taxonomy {
            total: zone.domain_count() as u64,
            ..Taxonomy::default()
        };
        let mut freq_all = Ecdf::new();
        let mut freq_migrating = Ecdf::new();
        let mut intensity_sites = Ecdf::new();
        struct MigRecord {
            delay_days: f64,
            norm_intensity: f64,
            long4h_delay: Option<f64>,
        }
        let mut migrations: Vec<MigRecord> = Vec::new();

        for domain in zone.domain_ids() {
            let preexisting = dps.is_preexisting(domain, zone);
            let migration_day = dps.migration_day(domain, zone);
            match web.site_records.get(&domain) {
                Some(rec) => {
                    tax.attacked += 1;
                    freq_all.push(rec.count as f64);
                    intensity_sites.push(rec.best_norm_intensity.max(0.0));
                    if preexisting {
                        tax.attacked_preexisting += 1;
                    } else {
                        // Migrating = first DPS use after the first
                        // observed attack.
                        match migration_day {
                            Some(day) if day > rec.first_attack_day => {
                                tax.attacked_migrating += 1;
                                freq_migrating.push(rec.count as f64);
                                let anchor = Self::delay_anchor(rec, day);
                                migrations.push(MigRecord {
                                    delay_days: (day.0 - anchor.0) as f64,
                                    norm_intensity: rec.best_norm_intensity,
                                    long4h_delay: rec
                                        .long4h_day
                                        .filter(|&d| d < day)
                                        .map(|d| (day.0 - d.0) as f64),
                                });
                            }
                            _ => tax.attacked_non_migrating += 1,
                        }
                    }
                }
                None => {
                    tax.unattacked += 1;
                    if preexisting {
                        tax.unattacked_preexisting += 1;
                    } else if migration_day.is_some() {
                        tax.unattacked_migrating += 1;
                    } else {
                        tax.unattacked_non_migrating += 1;
                    }
                }
            }
        }

        let intensity_over_sites = intensity_sites.freeze();
        // Intensity-class thresholds over the site-weighted distribution.
        let t95 = intensity_over_sites.quantile(0.95).unwrap_or(1.0);
        let t99 = intensity_over_sites.quantile(0.99).unwrap_or(1.0);
        let t999 = intensity_over_sites.quantile(0.999).unwrap_or(1.0);

        let mut delay_all = Ecdf::new();
        let mut delay_top5 = Ecdf::new();
        let mut delay_top1 = Ecdf::new();
        let mut delay_top01 = Ecdf::new();
        let mut delay_long4h = Ecdf::new();
        for m in &migrations {
            delay_all.push(m.delay_days);
            if m.norm_intensity >= t95 {
                delay_top5.push(m.delay_days);
            }
            if m.norm_intensity >= t99 {
                delay_top1.push(m.delay_days);
            }
            if m.norm_intensity >= t999 {
                delay_top01.push(m.delay_days);
            }
            if let Some(d) = m.long4h_delay {
                delay_long4h.push(d);
            }
        }

        Some(MigrationAnalysis {
            taxonomy: tax,
            freq_all: freq_all.freeze(),
            freq_migrating: freq_migrating.freeze(),
            intensity_over_sites,
            delay_all: delay_all.freeze(),
            delay_top5: delay_top5.freeze(),
            delay_top1: delay_top1.freeze(),
            delay_top01: delay_top01.freeze(),
            delay_long4h: delay_long4h.freeze(),
        })
    }

    /// The attack the delay is measured from: the most intense associated
    /// attack if it precedes the migration, otherwise the first attack.
    fn delay_anchor(rec: &crate::webimpact::SiteAttackRecord, migration: DayIndex) -> DayIndex {
        if rec.best_intensity_day <= migration {
            rec.best_intensity_day
        } else {
            rec.first_attack_day
        }
    }

    /// Table 9 rendered: Web-site share (%) at the published intensity
    /// thresholds.
    pub fn table9_row(&self) -> Vec<(f64, f64)> {
        [0.005, 0.07, 0.13, 0.52, 0.85, 1.0]
            .into_iter()
            .map(|t| (t, 100.0 * self.intensity_over_sites.cdf(t)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::webimpact::{IntensityNormalizer, SiteAttackRecord};
    use crate::EventStore;
    use dosscope_dns::{DayRange, OrgCatalog, OrgRole, Placement, Tld, ZoneStore};
    use dosscope_dps::DpsDataset;
    use dosscope_geo::{AsDb, GeoDb};
    use dosscope_types::TimeSeries;
    use dosscope_types::FastMap;

    /// A hand-built world: 4 sites — one preexisting DPS customer, one
    /// that migrates after an attack, one attacked non-migrating, one
    /// never attacked.
    struct World {
        zone: ZoneStore,
        catalog: OrgCatalog,
        geo: GeoDb,
        asdb: AsDb,
    }

    fn world() -> World {
        let mut catalog = OrgCatalog::new();
        let hoster = catalog.add("Host", None, OrgRole::Hoster, false);
        let dpsorg = catalog.add("Shield", None, OrgRole::Dps, true);
        let mut zone = ZoneStore::new();
        let window = DayRange::new(DayIndex(0), DayIndex(100));

        // Site 0: preexisting customer (CNAME through the DPS from day 0).
        let d0 = zone.add_domain(Tld::Com, window);
        zone.place(Placement {
            domain: d0,
            ip: "10.0.0.1".parse().unwrap(),
            days: window,
            ns: hoster,
            cname: Some(dpsorg),
        });
        // Site 1: migrates on day 20.
        let d1 = zone.add_domain(Tld::Com, window);
        zone.place(Placement {
            domain: d1,
            ip: "10.0.0.2".parse().unwrap(),
            days: DayRange::new(DayIndex(0), DayIndex(20)),
            ns: hoster,
            cname: None,
        });
        zone.place(Placement {
            domain: d1,
            ip: "10.0.0.3".parse().unwrap(),
            days: DayRange::new(DayIndex(20), DayIndex(100)),
            ns: hoster,
            cname: Some(dpsorg),
        });
        // Site 2: attacked, never migrates.
        let d2 = zone.add_domain(Tld::Net, window);
        zone.place(Placement {
            domain: d2,
            ip: "10.0.0.4".parse().unwrap(),
            days: window,
            ns: hoster,
            cname: None,
        });
        // Site 3: never attacked, never migrates.
        let d3 = zone.add_domain(Tld::Org, window);
        zone.place(Placement {
            domain: d3,
            ip: "10.0.0.5".parse().unwrap(),
            days: window,
            ns: hoster,
            cname: None,
        });

        World {
            zone,
            catalog,
            geo: GeoDb::new(),
            asdb: AsDb::new(),
        }
    }

    fn web_impact_with(records: FastMap<dosscope_dns::DomainId, SiteAttackRecord>) -> WebImpact {
        let store = EventStore::new();
        WebImpact {
            affected_total: records.len() as u64,
            total_sites: 4,
            daily_sites: TimeSeries::zeros(100),
            daily_sites_medium: TimeSeries::zeros(100),
            web_ip_count: 0,
            target_ip_count: 0,
            cohosting: dosscope_types::LogHistogram::new(7),
            cohosting_by_tld: [
                (dosscope_dns::Tld::Com, dosscope_types::LogHistogram::new(7)),
                (dosscope_dns::Tld::Net, dosscope_types::LogHistogram::new(7)),
                (dosscope_dns::Tld::Org, dosscope_types::LogHistogram::new(7)),
            ],
            biggest_cohost: None,
            site_records: records,
            web_tcp_share: 0.0,
            web_port_share: 0.0,
            web_ntp_share: 0.0,
            normalizer: IntensityNormalizer::fit(&store),
        }
    }

    fn record(count: u32, first: u32, best: f64, best_day: u32, long4h: Option<u32>) -> SiteAttackRecord {
        SiteAttackRecord {
            count,
            first_attack_day: DayIndex(first),
            best_norm_intensity: best,
            best_intensity_day: DayIndex(best_day),
            long4h_day: long4h.map(DayIndex),
        }
    }

    #[test]
    fn taxonomy_classification() {
        let w = world();
        let dps = DpsDataset::infer(&w.zone, &w.catalog, &w.asdb);
        let mut records = FastMap::default();
        // Sites 0, 1, 2 attacked (d0 preexisting, d1 migrates day 20 after
        // attack day 10, d2 non-migrating).
        records.insert(dosscope_dns::DomainId(0), record(1, 10, 0.5, 10, None));
        records.insert(dosscope_dns::DomainId(1), record(2, 10, 0.9, 12, Some(12)));
        records.insert(dosscope_dns::DomainId(2), record(5, 30, 0.1, 30, None));
        let web = web_impact_with(records);

        let store = EventStore::new();
        let fw = Framework::new(&store, &w.geo, &w.asdb, 100)
            .with_dns(&w.zone, &w.catalog)
            .with_dps(&dps);
        let m = MigrationAnalysis::analyze(&fw, &web).expect("data sets attached");

        assert_eq!(m.taxonomy.total, 4);
        assert_eq!(m.taxonomy.attacked, 3);
        assert_eq!(m.taxonomy.attacked_preexisting, 1);
        assert_eq!(m.taxonomy.attacked_migrating, 1);
        assert_eq!(m.taxonomy.attacked_non_migrating, 1);
        assert_eq!(m.taxonomy.unattacked, 1);
        assert_eq!(m.taxonomy.unattacked_non_migrating, 1);
        assert!((m.taxonomy.attacked_share() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn delays_measured_from_best_attack() {
        let w = world();
        let dps = DpsDataset::infer(&w.zone, &w.catalog, &w.asdb);
        let mut records = FastMap::default();
        // d1 migrates day 20; most intense attack day 12 => delay 8 days;
        // its ≥4 h attack also day 12 => long4h delay 8.
        records.insert(dosscope_dns::DomainId(1), record(2, 10, 0.9, 12, Some(12)));
        let web = web_impact_with(records);
        let store = EventStore::new();
        let fw = Framework::new(&store, &w.geo, &w.asdb, 100)
            .with_dns(&w.zone, &w.catalog)
            .with_dps(&dps);
        let m = MigrationAnalysis::analyze(&fw, &web).unwrap();
        assert_eq!(m.delay_all.len(), 1);
        assert_eq!(m.delay_all.samples()[0], 8.0);
        assert_eq!(m.delay_long4h.samples(), &[8.0]);
    }

    #[test]
    fn frequency_cdfs_split_population() {
        let w = world();
        let dps = DpsDataset::infer(&w.zone, &w.catalog, &w.asdb);
        let mut records = FastMap::default();
        records.insert(dosscope_dns::DomainId(1), record(1, 10, 0.9, 12, None)); // migrating
        records.insert(dosscope_dns::DomainId(2), record(9, 10, 0.5, 10, None)); // not
        let web = web_impact_with(records);
        let store = EventStore::new();
        let fw = Framework::new(&store, &w.geo, &w.asdb, 100)
            .with_dns(&w.zone, &w.catalog)
            .with_dps(&dps);
        let m = MigrationAnalysis::analyze(&fw, &web).unwrap();
        assert_eq!(m.freq_all.len(), 2);
        assert_eq!(m.freq_migrating.len(), 1);
        // The migrating site was attacked once; the frequency CDF at 5
        // shows the split (Figure 9's point).
        assert_eq!(m.freq_migrating.cdf(5.0), 1.0);
        assert_eq!(m.freq_all.cdf(5.0), 0.5);
    }

    #[test]
    fn table9_thresholds() {
        let w = world();
        let dps = DpsDataset::infer(&w.zone, &w.catalog, &w.asdb);
        let mut records = FastMap::default();
        records.insert(dosscope_dns::DomainId(1), record(1, 10, 0.03, 10, None));
        records.insert(dosscope_dns::DomainId(2), record(1, 10, 0.60, 10, None));
        let web = web_impact_with(records);
        let store = EventStore::new();
        let fw = Framework::new(&store, &w.geo, &w.asdb, 100)
            .with_dns(&w.zone, &w.catalog)
            .with_dps(&dps);
        let m = MigrationAnalysis::analyze(&fw, &web).unwrap();
        let rows = m.table9_row();
        // 50 % of sites ≤ 0.07, 100 % ≤ 1.0.
        assert!((rows[1].1 - 50.0).abs() < 1e-9);
        assert!((rows[5].1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn requires_dns_and_dps() {
        let w = world();
        let store = EventStore::new();
        let fw = Framework::new(&store, &w.geo, &w.asdb, 100).with_dns(&w.zone, &w.catalog);
        let web = web_impact_with(FastMap::default());
        assert!(MigrationAnalysis::analyze(&fw, &web).is_none());
    }
}
