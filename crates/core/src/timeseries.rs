//! Daily activity series: the data behind Figures 1 and 5.
//!
//! Per day and source the framework reports the number of attacks, unique
//! target IPs, targeted /16 blocks and targeted ASNs (multi-day attacks
//! count toward their start day, footnote 15 of the paper). Figure 5 is
//! the same series restricted to events of medium or higher intensity —
//! intensity at least the *mean* of its data set, per the paper's
//! definition.

use crate::enrich::Enricher;
use dosscope_types::{AttackEvent, TimeSeries};
use std::borrow::Borrow;
use std::collections::HashSet;

/// The four per-day series of one Figure 1 panel.
#[derive(Debug, Clone)]
pub struct DailySeries {
    /// Attacks per day.
    pub attacks: TimeSeries,
    /// Unique target IPs per day.
    pub targets: TimeSeries,
    /// Unique targeted /16 blocks per day.
    pub blocks16: TimeSeries,
    /// Unique targeted ASNs per day.
    pub asns: TimeSeries,
}

impl DailySeries {
    /// Build the series over an event set.
    ///
    /// `filter` selects which events count (identity for Figure 1, the
    /// medium+ intensity predicate for Figure 5).
    pub fn build<E, F>(
        events: impl Iterator<Item = E>,
        enricher: &Enricher<'_>,
        days: u32,
        mut filter: F,
    ) -> DailySeries
    where
        E: Borrow<AttackEvent>,
        F: FnMut(&AttackEvent) -> bool,
    {
        let mut attacks = TimeSeries::zeros(days);
        let mut day_targets: Vec<HashSet<u32>> = vec![HashSet::new(); days as usize];
        let mut day_blocks: Vec<HashSet<u32>> = vec![HashSet::new(); days as usize];
        let mut day_asns: Vec<HashSet<u32>> = vec![HashSet::new(); days as usize];
        for e in events {
            let e = e.borrow();
            if !filter(e) {
                continue;
            }
            let day = e.when.start.day();
            let idx = day.0 as usize;
            if idx >= days as usize {
                continue;
            }
            attacks.add(day, 1.0);
            day_targets[idx].insert(u32::from(e.target));
            let en = enricher.enrich(e);
            day_blocks[idx].insert(en.block16.raw());
            if let Some(asn) = en.asn {
                day_asns[idx].insert(asn.0);
            }
        }
        let collect = |sets: Vec<HashSet<u32>>| {
            let mut ts = TimeSeries::zeros(days);
            for (i, s) in sets.into_iter().enumerate() {
                ts.set(dosscope_types::DayIndex(i as u32), s.len() as f64);
            }
            ts
        };
        DailySeries {
            attacks,
            targets: collect(day_targets),
            blocks16: collect(day_blocks),
            asns: collect(day_asns),
        }
    }

    /// Mean attacks per day (the paper quotes 17.1 k / 11.6 k / 28.7 k).
    pub fn mean_daily_attacks(&self) -> f64 {
        self.attacks.daily_mean()
    }
}

/// The mean intensity of an event set — the "medium intensity" cutoff.
pub fn mean_intensity<E: Borrow<AttackEvent>>(events: impl Iterator<Item = E>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for e in events {
        sum += e.borrow().intensity_pps;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dosscope_geo::{AsDb, GeoDb};
    use dosscope_types::{
        Asn, AttackVector, CountryCode, PortSignature, SimTime, TimeRange, TransportProto,
        SECS_PER_DAY,
    };

    fn event(ip: &str, day: u64, intensity: f64) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(
                SimTime(day * SECS_PER_DAY + 100),
                SimTime(day * SECS_PER_DAY + 400),
            ),
            vector: AttackVector::RandomlySpoofed {
                proto: TransportProto::Tcp,
                ports: PortSignature::Single(80),
            },
            packets: 100,
            bytes: 4000,
            intensity_pps: intensity,
            distinct_sources: 10,
        }
    }

    fn dbs() -> (GeoDb, AsDb) {
        let mut geo = GeoDb::new();
        let mut asdb = AsDb::new();
        geo.insert("10.0.0.0/8".parse().unwrap(), CountryCode::new("US"));
        asdb.insert("10.1.0.0/16".parse().unwrap(), Asn(1));
        asdb.insert("10.2.0.0/16".parse().unwrap(), Asn(2));
        (geo, asdb)
    }

    #[test]
    fn daily_aggregates() {
        let (geo, asdb) = dbs();
        let enricher = Enricher::new(&geo, &asdb);
        let events = [
            event("10.1.0.1", 0, 1.0),
            event("10.1.0.1", 0, 2.0), // same target, same day
            event("10.2.0.2", 0, 3.0),
            event("10.1.0.3", 1, 4.0),
        ];
        let s = DailySeries::build(events.iter(), &enricher, 3, |_| true);
        assert_eq!(s.attacks.values(), &[3.0, 1.0, 0.0]);
        assert_eq!(s.targets.values(), &[2.0, 1.0, 0.0]);
        assert_eq!(s.blocks16.values(), &[2.0, 1.0, 0.0]);
        assert_eq!(s.asns.values(), &[2.0, 1.0, 0.0]);
        assert!((s.mean_daily_attacks() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn medium_intensity_filter() {
        let (geo, asdb) = dbs();
        let enricher = Enricher::new(&geo, &asdb);
        let events = [
            event("10.1.0.1", 0, 1.0),
            event("10.1.0.2", 0, 2.0),
            event("10.1.0.3", 0, 9.0),
        ];
        let cutoff = mean_intensity(events.iter());
        assert!((cutoff - 4.0).abs() < 1e-12);
        let s = DailySeries::build(events.iter(), &enricher, 1, |e| {
            e.intensity_pps >= cutoff
        });
        assert_eq!(s.attacks.values(), &[1.0]);
    }

    #[test]
    fn mean_intensity_empty() {
        let none: [AttackEvent; 0] = [];
        assert_eq!(mean_intensity(none.iter()), 0.0);
    }

    #[test]
    fn out_of_window_events_ignored() {
        let (geo, asdb) = dbs();
        let enricher = Enricher::new(&geo, &asdb);
        let events = [event("10.1.0.1", 10, 1.0)];
        let s = DailySeries::build(events.iter(), &enricher, 3, |_| true);
        assert_eq!(s.attacks.total(), 0.0);
    }
}
