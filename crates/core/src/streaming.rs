//! Near-realtime data fusion: incremental, day-by-day ingestion with
//! always-current aggregates.
//!
//! The paper closes on exactly this challenge: "while most of the
//! measurement infrastructure that enables this work already collects data
//! in near-realtime, a significant challenge is enabling near-realtime
//! data fusion, extraction, correlation and visualization". This module
//! provides the fusion side of that: a [`StreamingFusion`] accepts events
//! as the detectors emit them and maintains the Table 1 aggregates, the
//! daily activity series and the joint-target correlation *incrementally*
//! — a [`StreamingFusion::snapshot`] at any instant reflects everything
//! ingested so far, in O(1) per query, without re-scanning history.

use crate::enrich::Enricher;
use crate::store::SourceSummary;
use dosscope_types::{
    AttackEvent, DayIndex, EventSource, Prefix16, Prefix24, TimeRange, TimeSeries,
};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Rolling per-source aggregates.
#[derive(Debug, Default)]
struct SourceAccum {
    events: u64,
    targets: HashSet<Ipv4Addr>,
    blocks24: HashSet<Prefix24>,
    blocks16: HashSet<Prefix16>,
    asns: HashSet<u32>,
    /// Open intervals per target for the live joint correlation.
    recent_windows: HashMap<Ipv4Addr, Vec<TimeRange>>,
}

impl SourceAccum {
    fn summary(&self) -> SourceSummary {
        SourceSummary {
            events: self.events,
            targets: self.targets.len() as u64,
            blocks24: self.blocks24.len() as u64,
            blocks16: self.blocks16.len() as u64,
        }
    }
}

/// A point-in-time view of the fused state.
#[derive(Debug, Clone)]
pub struct StreamingSnapshot {
    /// Telescope aggregates so far.
    pub telescope: SourceSummary,
    /// Honeypot aggregates so far.
    pub honeypot: SourceSummary,
    /// Combined unique targets so far.
    pub combined_targets: u64,
    /// Combined events so far.
    pub combined_events: u64,
    /// Targets seen by both sources so far.
    pub common_targets: u64,
    /// Targets hit by overlapping attacks from both sources so far.
    pub joint_targets: u64,
    /// Unique ASNs targeted so far (both sources).
    pub asns: u64,
    /// Latest day with any activity.
    pub last_day: Option<DayIndex>,
}

/// The fusion accumulators themselves, with no tie to the metadata
/// databases: an owned, `'static`, [`Send`] value, so a sharded engine can
/// move one onto each long-lived pool worker (see
/// [`crate::sharded::ShardedFusion`]). The caller supplies the target's
/// origin AS with each event — [`StreamingFusion`] resolves it through the
/// shared [`Enricher`] cache, pool workers through a worker-local memo.
pub struct FusionState {
    tele: SourceAccum,
    hp: SourceAccum,
    combined_targets: HashSet<Ipv4Addr>,
    combined_asns: HashSet<u32>,
    joint_targets: HashSet<Ipv4Addr>,
    daily_attacks: TimeSeries,
    daily_targets: Vec<HashSet<u32>>,
    last_day: Option<DayIndex>,
    /// Horizon for pruning the per-target window lists: windows ending
    /// more than this many seconds before the newest event can no longer
    /// overlap anything new (events arrive roughly in time order).
    prune_horizon_secs: u64,
    newest_start: u64,
}

/// The incremental fusion engine.
pub struct StreamingFusion<'a> {
    enricher: Enricher<'a>,
    state: FusionState,
}

impl FusionState {
    /// Empty accumulators covering `days`.
    pub fn new(days: u32) -> FusionState {
        FusionState {
            tele: SourceAccum::default(),
            hp: SourceAccum::default(),
            combined_targets: HashSet::new(),
            combined_asns: HashSet::new(),
            joint_targets: HashSet::new(),
            daily_attacks: TimeSeries::zeros(days),
            daily_targets: vec![HashSet::new(); days as usize],
            last_day: None,
            // Telescope events are capped around 2.5 days, honeypot at
            // 24 h; 4 days of slack is safe for near-in-order arrival.
            prune_horizon_secs: 4 * 86_400,
            newest_start: 0,
        }
    }

    /// Ingest one event, with the target's origin AS already resolved.
    pub fn push(&mut self, event: &AttackEvent, asn: Option<u32>) {
        // Telemetry mirror; the serial and sharded fusion both funnel
        // every event through here exactly once.
        dosscope_obs::counter!("fusion.events").inc();
        let source = event.source();

        // Live joint correlation first: does this event overlap any open
        // window of the *other* source on the same target?
        {
            let other = match source {
                EventSource::Telescope => &self.hp,
                EventSource::Honeypot => &self.tele,
            };
            if let Some(windows) = other.recent_windows.get(&event.target) {
                if windows.iter().any(|w| w.overlaps(&event.when)) {
                    self.joint_targets.insert(event.target);
                }
            }
        }

        let accum = match source {
            EventSource::Telescope => &mut self.tele,
            EventSource::Honeypot => &mut self.hp,
        };
        accum.events += 1;
        accum.targets.insert(event.target);
        accum.blocks24.insert(Prefix24::of(event.target));
        accum.blocks16.insert(Prefix16::of(event.target));
        if let Some(a) = asn {
            accum.asns.insert(a);
            self.combined_asns.insert(a);
        }
        accum
            .recent_windows
            .entry(event.target)
            .or_default()
            .push(event.when);

        self.combined_targets.insert(event.target);
        let day = event.when.start.day();
        self.daily_attacks.add(day, 1.0);
        if let Some(set) = self.daily_targets.get_mut(day.0 as usize) {
            set.insert(u32::from(event.target));
        }
        self.last_day = Some(self.last_day.map_or(day, |d| d.max(day)));

        // Periodic pruning of stale windows keeps memory proportional to
        // the active attack population, not to history.
        self.newest_start = self.newest_start.max(event.when.start.secs());
        if self.tele.events.wrapping_add(self.hp.events).is_multiple_of(1024) {
            self.prune();
        }
    }

    fn prune(&mut self) {
        let cutoff = self.newest_start.saturating_sub(self.prune_horizon_secs);
        for accum in [&mut self.tele, &mut self.hp] {
            accum.recent_windows.retain(|_, windows| {
                windows.retain(|w| w.end.secs() >= cutoff);
                !windows.is_empty()
            });
        }
    }

    /// The current fused state.
    pub fn snapshot(&self) -> StreamingSnapshot {
        let common = self
            .tele
            .targets
            .intersection(&self.hp.targets)
            .count() as u64;
        StreamingSnapshot {
            telescope: self.tele.summary(),
            honeypot: self.hp.summary(),
            combined_targets: self.combined_targets.len() as u64,
            combined_events: self.tele.events + self.hp.events,
            common_targets: common,
            joint_targets: self.joint_targets.len() as u64,
            asns: self.combined_asns.len() as u64,
            last_day: self.last_day,
        }
    }

    /// Attacks per day ingested so far.
    pub fn daily_attacks(&self) -> &TimeSeries {
        &self.daily_attacks
    }

    /// The distinct targeted ASNs so far (both sources). Crate-visible so
    /// the sharded merge ([`crate::sharded::ShardedFusion`]) can union the
    /// sets: an AS spans /16s and therefore shards, so per-shard counts
    /// must not simply be summed.
    pub(crate) fn combined_asn_set(&self) -> &HashSet<u32> {
        &self.combined_asns
    }

    /// Unique targets on one day so far.
    pub fn targets_on(&self, day: DayIndex) -> u64 {
        self.daily_targets
            .get(day.0 as usize)
            .map(|s| s.len() as u64)
            .unwrap_or(0)
    }
}

impl<'a> StreamingFusion<'a> {
    /// A fusion engine over the metadata databases, covering `days`.
    pub fn new(
        geo: &'a dosscope_geo::GeoDb,
        asdb: &'a dosscope_geo::AsDb,
        days: u32,
    ) -> StreamingFusion<'a> {
        StreamingFusion {
            enricher: Enricher::new(geo, asdb),
            state: FusionState::new(days),
        }
    }

    /// Ingest one event as it is emitted by either detector.
    pub fn push(&mut self, event: &AttackEvent) {
        let (_, asn) = self.enricher.lookup(event.target);
        self.state.push(event, asn.map(|a| a.0));
    }

    /// The current fused state.
    pub fn snapshot(&self) -> StreamingSnapshot {
        self.state.snapshot()
    }

    /// Attacks per day ingested so far.
    pub fn daily_attacks(&self) -> &TimeSeries {
        self.state.daily_attacks()
    }

    /// Unique targets on one day so far.
    pub fn targets_on(&self, day: DayIndex) -> u64 {
        self.state.targets_on(day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::EventStore;
    use dosscope_geo::{AsDb, GeoDb};
    use dosscope_types::{AttackVector, PortSignature, ReflectionProtocol, SimTime, TransportProto};

    fn tele(ip: &str, start: u64, end: u64) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(SimTime(start), SimTime(end)),
            vector: AttackVector::RandomlySpoofed {
                proto: TransportProto::Tcp,
                ports: PortSignature::Single(80),
            },
            packets: 100,
            bytes: 4000,
            intensity_pps: 1.0,
            distinct_sources: 10,
        }
    }

    fn hp(ip: &str, start: u64, end: u64) -> AttackEvent {
        AttackEvent {
            target: ip.parse().unwrap(),
            when: TimeRange::new(SimTime(start), SimTime(end)),
            vector: AttackVector::Reflection {
                protocol: ReflectionProtocol::Ntp,
            },
            packets: 500,
            bytes: 20_000,
            intensity_pps: 10.0,
            distinct_sources: 4,
        }
    }

    #[test]
    fn incremental_matches_batch() {
        let geo = GeoDb::new();
        let asdb = AsDb::new();
        let events_t = vec![
            tele("10.0.0.1", 100, 500),
            tele("10.0.0.2", 600, 900),
            tele("10.0.0.1", 5_000, 5_400),
        ];
        let events_h = vec![hp("10.0.0.1", 300, 800), hp("10.0.1.9", 100, 400)];

        let mut streaming = StreamingFusion::new(&geo, &asdb, 10);
        // Interleave by start time, as live detectors would.
        let mut all: Vec<(bool, AttackEvent)> = events_t
            .iter()
            .cloned()
            .map(|e| (true, e))
            .chain(events_h.iter().cloned().map(|e| (false, e)))
            .collect();
        all.sort_by_key(|(_, e)| e.when.start);
        for (_, e) in &all {
            streaming.push(e);
        }
        let snap = streaming.snapshot();

        let mut batch = EventStore::new();
        batch.ingest_telescope(events_t);
        batch.ingest_honeypot(events_h);
        assert_eq!(snap.telescope, batch.summary(EventSource::Telescope));
        assert_eq!(snap.honeypot, batch.summary(EventSource::Honeypot));
        assert_eq!(snap.combined_targets, batch.summary_combined().targets);
        assert_eq!(snap.combined_events, batch.summary_combined().events);
        assert_eq!(snap.common_targets, batch.common_targets());
        assert_eq!(snap.joint_targets, 1, "10.0.0.1 overlaps across sources");
    }

    #[test]
    fn snapshot_reflects_only_ingested_prefix() {
        let geo = GeoDb::new();
        let asdb = AsDb::new();
        let mut s = StreamingFusion::new(&geo, &asdb, 10);
        s.push(&tele("10.0.0.1", 100, 500));
        let snap1 = s.snapshot();
        assert_eq!(snap1.combined_events, 1);
        assert_eq!(snap1.joint_targets, 0);
        s.push(&hp("10.0.0.1", 300, 800));
        let snap2 = s.snapshot();
        assert_eq!(snap2.combined_events, 2);
        assert_eq!(snap2.joint_targets, 1);
        assert_eq!(snap2.common_targets, 1);
    }

    #[test]
    fn daily_series_accumulates() {
        let geo = GeoDb::new();
        let asdb = AsDb::new();
        let mut s = StreamingFusion::new(&geo, &asdb, 3);
        s.push(&tele("10.0.0.1", 100, 500));
        s.push(&tele("10.0.0.2", 200, 600));
        s.push(&hp("10.0.0.3", 86_400 + 10, 86_400 + 500));
        assert_eq!(s.daily_attacks().get(DayIndex(0)), 2.0);
        assert_eq!(s.daily_attacks().get(DayIndex(1)), 1.0);
        assert_eq!(s.targets_on(DayIndex(0)), 2);
        assert_eq!(s.snapshot().last_day, Some(DayIndex(1)));
    }

    #[test]
    fn pruning_does_not_lose_live_overlaps() {
        let geo = GeoDb::new();
        let asdb = AsDb::new();
        let mut s = StreamingFusion::new(&geo, &asdb, 100);
        // Push > 1024 events to force a prune, then verify a fresh overlap
        // is still detected.
        for i in 0..1100u64 {
            s.push(&tele(&format!("10.{}.{}.1", i / 250, i % 250), i * 3_600, i * 3_600 + 600));
        }
        let t = 1_099 * 3_600;
        s.push(&hp("10.4.99.1", t, t + 600));
        s.push(&tele("10.200.0.1", t + 100, t + 700));
        s.push(&hp("10.200.0.1", t + 200, t + 650));
        assert!(s.snapshot().joint_targets >= 1, "fresh overlap detected");
    }
}
