#!/usr/bin/env bash
# The full local CI gate: everything the repository promises, in order.
#
#   ./ci.sh            # build + lock check + tests + clippy
#
# All crates are path dependencies (the vendored stubs included), so the
# whole script runs offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --locked"
cargo build --release --locked --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench smoke (pipeline --smoke --check BENCH_pipeline.json)"
# Runs the end-to-end bench at the reduced smoke scale with measurement
# threads {1, 8} and validates the committed trajectory file:
#   * structurally well-formed v5 schema, every (stage, threads) pair
#     present, nonzero peak working set on the threaded detection lanes;
#   * no measured current-vs-baseline speedup regressed to less than half
#     the committed value;
#   * the committed parallel_speedup holds the 4x floor on telescope and
#     fleet at 8 threads, and the fresh run's sharded decomposition still
#     beats its serial lane;
#   * threads=8 must not regress past threads=1: gated on honest wall
#     time on hosts with >= 8 cores, and on the contention-free pipelined
#     bound (what the wall becomes once the cores exist) elsewhere;
#   * on full-scale regenerations only (walls are not comparable across
#     scales), the disabled-telemetry serial measurement stays within 2%
#     of the committed trajectory;
#   * ingest linearity on the committed sweep: the scale=100 lane proves
#     the 100x-paper-scale run (>= 100M events with nonzero fusion+report
#     throughput and a recorded peak working set), its scale-normalized
#     ingest wall (ingest_secs / 100) stays within 2.0x of the committed
#     scale=1 lane, and the scale=20 lane stays within 3.0x of 20x the
#     scale=1 ingest wall — sorted-run ingest must not regress back to
#     the superlinear merge-per-batch behavior;
#   * the fresh smoke run completes its own sweep (scales {1, 5},
#     best-of-3 interleaved out-of-order batches) and its scale=5 ingest
#     wall stays within 7.0x of its scale=1 wall (5x the rows plus
#     consolidation headroom).
# Speedups and linearity checks are in-run ratios, so every gate is
# machine-independent.
smoke_out="$(mktemp)"
telemetry_out="$(mktemp)"
trap 'rm -f "$smoke_out" "$telemetry_out"' EXIT
./target/release/pipeline --smoke --out "$smoke_out" --check BENCH_pipeline.json

echo "==> telemetry smoke (repro --smoke --telemetry --threads 8 + validator)"
# A full reduced-scale reproduction with collection on must emit a
# schema-valid TELEMETRY.json: every pipeline stage span present, every
# engine counter nonzero, and all 8 workers of both measurement pools
# showing nonzero busy time and queue high-water marks.
./target/release/repro --smoke --telemetry --threads 8 --quiet \
    --telemetry-out "$telemetry_out" > /dev/null
./target/release/repro --validate-telemetry "$telemetry_out"

echo "==> lint: no bare println!/eprintln! in library crates"
# Library code reports through dosscope-obs (leveled logger, counters,
# spans) — never straight to stdio. Binaries (src/bin/) and tests are
# exempt; the obs logger itself writes via writeln! on a locked handle.
# Matches inside #[cfg(test)] modules are fine: test modules in this
# repo sit at the bottom of each file behind the cfg(test) marker, so
# any hit at or past that line is test code.
lint_hits="$(grep -rn --include='*.rs' -E '\b(println|eprintln)!' \
    crates/*/src --exclude-dir=bin 2>/dev/null \
    | while IFS=: read -r file line rest; do
        cfg_line="$(grep -n -m1 '#\[cfg(test)\]' "$file" | cut -d: -f1)"
        if [ -n "$cfg_line" ] && [ "$line" -ge "$cfg_line" ]; then
            continue
        fi
        echo "$file:$line:$rest"
    done || true)"
if [ -n "$lint_hits" ]; then
    echo "ci.sh: bare println!/eprintln! in library code (use dosscope-obs):" >&2
    echo "$lint_hits" >&2
    exit 1
fi

echo "ci.sh: all checks passed"
