#!/usr/bin/env bash
# The full local CI gate: everything the repository promises, in order.
#
#   ./ci.sh            # build + lock check + tests + clippy
#
# All crates are path dependencies (the vendored stubs included), so the
# whole script runs offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --locked"
cargo build --release --locked --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench smoke (pipeline --smoke --check BENCH_pipeline.json)"
# Runs the end-to-end bench at the reduced smoke scale with measurement
# threads {1, 8} and validates the committed trajectory file:
#   * structurally well-formed v2 schema, every (stage, threads) pair
#     present, nonzero peak working set on the threaded detection lanes;
#   * no measured current-vs-baseline speedup regressed to less than half
#     the committed value;
#   * the committed parallel_speedup holds the 4x floor on telescope and
#     fleet at 8 threads, and the fresh run's sharded decomposition still
#     beats its serial lane;
#   * threads=8 must not regress past threads=1: gated on honest wall
#     time on hosts with >= 8 cores, and on the contention-free pipelined
#     bound (what the wall becomes once the cores exist) elsewhere.
# Speedups are in-run ratios, so every gate is machine-independent.
smoke_out="$(mktemp)"
trap 'rm -f "$smoke_out"' EXIT
./target/release/pipeline --smoke --out "$smoke_out" --check BENCH_pipeline.json

echo "ci.sh: all checks passed"
