#!/usr/bin/env bash
# The full local CI gate: everything the repository promises, in order.
#
#   ./ci.sh            # build + lock check + tests + clippy
#
# All crates are path dependencies (the vendored stubs included), so the
# whole script runs offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --locked"
cargo build --release --locked --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "ci.sh: all checks passed"
