//! Near-realtime fusion — the paper's concluding challenge: "a significant
//! challenge is enabling near-realtime data fusion, extraction,
//! correlation and visualization". Feed detector events in arrival order
//! into the incremental [`StreamingFusion`] engine and print a monthly
//! situational-awareness snapshot as the two-year window unfolds.
//!
//! ```sh
//! cargo run --release --example streaming_fusion
//! ```

use dosscope_core::streaming::StreamingFusion;
use dosscope_harness::{Scenario, ScenarioConfig};
use dosscope_types::AttackEvent;

fn main() {
    let config = ScenarioConfig {
        scale: 10_000.0,
        ..ScenarioConfig::default()
    };
    let world = Scenario::run(&config);

    // Merge both sources into arrival order, as live detectors would
    // deliver them.
    let mut stream: Vec<AttackEvent> = world
        .store
        .telescope()
        .iter()
        .chain(world.store.honeypot())
        .collect();
    stream.sort_by_key(|e| e.when.start);

    let mut fusion = StreamingFusion::new(&world.geo, &world.asdb, world.days);
    let mut next_report = 30u32;
    println!("day   | events  targets  /24s  common  joint  ASNs");
    for e in &stream {
        fusion.push(e);
        let day = e.when.start.day().0;
        if day >= next_report {
            let s = fusion.snapshot();
            println!(
                "{:>5} | {:>6} {:>8} {:>5} {:>7} {:>6} {:>5}",
                next_report,
                s.combined_events,
                s.combined_targets,
                s.telescope.blocks24 + s.honeypot.blocks24,
                s.common_targets,
                s.joint_targets,
                s.asns,
            );
            next_report += 90;
        }
    }
    let s = fusion.snapshot();
    println!(
        "final | {:>6} {:>8}   -   {:>7} {:>6} {:>5}",
        s.combined_events, s.combined_targets, s.common_targets, s.joint_targets, s.asns
    );
    println!(
        "\n(identical to the batch analysis — see tests/end_to_end.rs::streaming_fusion_matches_batch)"
    );
}
