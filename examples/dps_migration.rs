//! Attack effects on DPS migration (Section 6 of the paper): classify
//! every Web site into the Figure 8 taxonomy, compare attack-frequency
//! distributions (Figure 9) and show how attack intensity accelerates
//! migration (Figures 10 and 11).
//!
//! ```sh
//! cargo run --release --example dps_migration
//! ```

use dosscope_core::migration::MigrationAnalysis;
use dosscope_core::report::Table3;
use dosscope_core::webimpact::WebImpact;
use dosscope_harness::{Scenario, ScenarioConfig};

fn main() {
    let config = ScenarioConfig {
        scale: 10_000.0,
        ..ScenarioConfig::default()
    };
    let world = Scenario::run(&config);
    let fw = world.framework();

    println!("{}", Table3::build(&fw).expect("DPS data attached").render());

    let web = WebImpact::analyze(&fw).unwrap();
    let m = MigrationAnalysis::analyze(&fw, &web).unwrap();
    let t = &m.taxonomy;
    let (pre_a, pre_u) = t.preexisting_shares();
    let (mig_a, mig_u) = t.migrating_shares();

    println!("Web-site taxonomy (Figure 8):");
    println!("  {} Web sites total", t.total);
    println!(
        "  attacked: {} ({:.1}%) — preexisting DPS customers {:.1}%, migrating {:.2}%",
        t.attacked,
        100.0 * t.attacked_share(),
        100.0 * pre_a,
        100.0 * mig_a
    );
    println!(
        "  no attack observed: {} — preexisting {:.2}%, migrating {:.2}%",
        t.unattacked,
        100.0 * pre_u,
        100.0 * mig_u
    );

    println!(
        "\nFigure 9 — attacked <= 5 times: all sites {:.1}%, migrating sites {:.1}%",
        100.0 * m.freq_all.cdf(5.0),
        100.0 * m.freq_migrating.cdf(5.0)
    );
    println!("  (repetition is not a determining factor for migration)");

    println!("\nFigure 10 — migration within N days by attack intensity:");
    for days in [1.0, 2.0, 4.0, 6.0, 8.0, 16.0] {
        println!(
            "  <= {days:>2} days: all {:>5.1}%  top5% {:>5.1}%  top1% {:>5.1}%  top0.1% {:>5.1}%",
            100.0 * m.delay_all.cdf(days),
            100.0 * m.delay_top5.cdf(days),
            100.0 * m.delay_top1.cdf(days),
            100.0 * m.delay_top01.cdf(days)
        );
    }
    println!("  (earlier migration follows attacks of higher intensity)");

    println!(
        "\nFigure 11 — after >=4h attacks: {:.1}% migrate within a day, {:.1}% within 5 days (n={})",
        100.0 * m.delay_long4h.cdf(1.0),
        100.0 * m.delay_long4h.cdf(5.0),
        m.delay_long4h.len()
    );
}
