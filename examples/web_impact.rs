//! The effect of attacks on the Web (Section 5 of the paper): join attack
//! events with the active DNS measurement, print the co-hosting histogram
//! (Figure 6), the daily involvement series summary (Figure 7), and the
//! parties behind the biggest peak.
//!
//! ```sh
//! cargo run --release --example web_impact
//! ```

use dosscope_core::report::render_web_impact;
use dosscope_core::webimpact::{parties_on_day, WebImpact};
use dosscope_harness::{Scenario, ScenarioConfig};

fn main() {
    let config = ScenarioConfig {
        scale: 10_000.0,
        ..ScenarioConfig::default()
    };
    let world = Scenario::run(&config);
    let fw = world.framework();
    let web = WebImpact::analyze(&fw).expect("the scenario attaches DNS data");

    println!("{}", render_web_impact(&web));
    println!(
        "unique target IPs: {} — of which {} ({:.1}%) host at least one Web site",
        web.target_ip_count,
        web.web_ip_count,
        100.0 * web.web_ip_count as f64 / web.target_ip_count as f64
    );
    println!(
        "protocol shifts on Web-hosting IPs: TCP {:.1}% (all attacks: 79.4%), web ports {:.1}%, NTP {:.1}%",
        100.0 * web.web_tcp_share,
        100.0 * web.web_port_share,
        100.0 * web.web_ntp_share
    );

    // Who is behind the biggest peak? (The paper names GoDaddy, WordPress,
    // Wix, Squarespace, OVH across its four marquee days.)
    let (peak_day, frac) = web.peak_fraction();
    println!(
        "\nbiggest peak: {:.2}% of all Web sites on {} — parties:",
        100.0 * frac,
        peak_day
    );
    for (name, sites) in parties_on_day(&fw, peak_day).into_iter().take(6) {
        println!("  {name:<28} {sites} sites");
    }
}
