//! Quickstart: run a scaled two-year DoS-ecosystem scenario end to end and
//! print the headline numbers — the fastest way to see the whole library
//! working.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dosscope_core::report::{Table1, Table5, Table6};
use dosscope_harness::{Scenario, ScenarioConfig};

fn main() {
    // 1/20000 of the paper's scale finishes in about a second.
    let config = ScenarioConfig {
        scale: 20_000.0,
        ..ScenarioConfig::default()
    };
    println!(
        "simulating {} days of the DoS ecosystem at scale 1/{} ...",
        config.days, config.scale
    );
    let world = Scenario::run(&config);

    println!(
        "\ndetected {} randomly spoofed attacks (telescope) and {} reflection attacks (honeypots)",
        world.store.telescope().len(),
        world.store.honeypot().len()
    );
    println!(
        "telescope pipeline: {} backscatter packets accepted, {} flows filtered",
        world.telescope_stats.backscatter_packets, world.telescope_stats.flows_filtered
    );
    println!(
        "honeypot fleet: {} requests logged, {} scans filtered, {} rate-limited replies sent",
        world.fleet_stats.requests, world.fleet_stats.scan_filtered, world.fleet_stats.replies_sent
    );

    // Assemble the analysis framework and print the headline tables.
    let fw = world.framework();
    println!("\n{}", Table1::build(&fw).render());
    println!("{}", Table5::build(&fw).render());
    println!("{}", Table6::build(&fw).render());
}
