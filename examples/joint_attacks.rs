//! Joint attacks at the packet level: build a SYN flood's backscatter and
//! an NTP reflection attack against the same victim from raw bytes, run
//! them through the real detection pipelines, and correlate — the
//! low-level API the scenario harness automates.
//!
//! ```sh
//! cargo run --release --example joint_attacks
//! ```

use dosscope_amppot::{AmpPotFleet, HoneypotId, RequestBatch};
use dosscope_core::{Enricher, EventStore, JointAnalysis};
use dosscope_geo::{AsDb, GeoDb};
use dosscope_telescope::{run_rsdos, PacketBatch, RsdosDetector, Telescope};
use dosscope_types::{CountryCode, ReflectionProtocol, SimTime};
use dosscope_wire::builder;
use std::net::Ipv4Addr;

fn main() {
    let victim: Ipv4Addr = "203.0.113.80".parse().unwrap();
    let telescope = Telescope::default_slash8();

    // --- The SYN flood, seen as backscatter -------------------------------
    // The victim answers spoofed SYNs with SYN/ACKs; 1/256 of the spoofed
    // sources fall into the darknet. Render 10 minutes at ~2 pps observed.
    let mut backscatter = Vec::new();
    for s in 0..600u64 {
        let spoofed = Ipv4Addr::new(44, 10, (s % 250) as u8, (s % 200) as u8);
        let pkt = builder::tcp_syn_ack(victim, 80, spoofed, 40_000 + s as u16, s as u32);
        backscatter.push(PacketBatch::repeated(SimTime(1_000 + s), 2, pkt));
    }
    let detector = RsdosDetector::with_defaults(telescope);
    let (tele_events, stats) = run_rsdos(detector, backscatter, 60);
    println!(
        "telescope: {} backscatter packets -> {} attack event(s)",
        stats.backscatter_packets,
        tele_events.len()
    );
    for e in &tele_events {
        println!(
            "  {} {:?} port(s) {:?}, {:.1} pps observed (≈{:.0} pps at the victim), {}s",
            e.target,
            e.transport_proto().unwrap(),
            e.port_signature().unwrap(),
            e.intensity_pps,
            e.intensity_pps * telescope.scaling_factor(),
            e.duration_secs()
        );
    }

    // --- The simultaneous NTP reflection attack ---------------------------
    // The attacker spoofs monlist requests "from" the victim at four of
    // the fleet's honeypots, overlapping the SYN flood in time.
    let mut fleet = AmpPotFleet::standard();
    let pots: Vec<_> = fleet.honeypots().iter().map(|h| (h.id, h.addr)).collect();
    for s in 0..400u64 {
        for &(id, addr) in pots.iter().take(4) {
            let pkt = builder::reflection_request(victim, 51_000, addr, ReflectionProtocol::Ntp);
            fleet.ingest(&RequestBatch::repeated(id, SimTime(1_200 + s), 3, pkt));
        }
    }
    let (hp_events, fstats) = fleet.finish();
    println!(
        "honeypots: {} requests -> {} attack event(s)",
        fstats.requests,
        hp_events.len()
    );
    for e in &hp_events {
        println!(
            "  {} {:?} at {:.0} req/s over {} honeypots, {}s",
            e.target,
            e.reflection_protocol().unwrap(),
            e.intensity_pps,
            e.distinct_sources,
            e.duration_secs()
        );
    }

    // --- Correlation -------------------------------------------------------
    let mut store = EventStore::new();
    store.ingest_telescope(tele_events);
    store.ingest_honeypot(hp_events);
    let mut geo = GeoDb::new();
    geo.insert("203.0.113.0/24".parse().unwrap(), CountryCode::new("NL"));
    let asdb = AsDb::new();
    let enricher = Enricher::new(&geo, &asdb);
    let joint = JointAnalysis::run(&store, &enricher);
    let _ = HoneypotId(0);

    println!(
        "\ncorrelation: {} common target(s), {} joint target(s), {} overlapping pair(s)",
        joint.common_targets, joint.joint_targets, joint.joint_pairs
    );
    assert_eq!(joint.joint_targets, 1, "the SYN flood and NTP attack overlap");
    println!("=> {victim} was hit by a joint attack (SYN flood + NTP reflection)");
}
