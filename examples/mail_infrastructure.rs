//! Attacks on shared mail and DNS infrastructure — the paper's Section 8
//! future work: map targeted IPs to mail exchangers (`MX`) and
//! authoritative name servers, and measure how many domains' mail or DNS
//! service was potentially affected.
//!
//! ```sh
//! cargo run --release --example mail_infrastructure
//! ```

use dosscope_core::mailimpact::InfrastructureImpact;
use dosscope_harness::{Scenario, ScenarioConfig};

fn main() {
    let config = ScenarioConfig {
        scale: 10_000.0,
        ..ScenarioConfig::default()
    };
    let world = Scenario::run(&config);
    let fw = world.framework();
    let impact = InfrastructureImpact::analyze(&fw).expect("DNS data attached");

    println!("{}", impact.render());
    println!(
        "registered infrastructure: {} organisations with MX/NS addresses",
        world.synth.zone.infra().len()
    );
    // The paper's observation, reproduced: the biggest hoster's mail
    // servers serve the most domains and attract attacks.
    if let Some((org, n)) = impact.mail.top_orgs.first() {
        println!("most-affected mail operator: {org} ({n} domains)");
    }
}
