//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so the
//! workspace vendors the exact API subset it uses: [`rngs::SmallRng`]
//! seeded through [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_bool` and `gen_range`.
//!
//! The generator is xoshiro256++ (the same family the real `SmallRng`
//! uses on 64-bit targets) initialised through SplitMix64, so streams are
//! deterministic, well distributed and cheap. The exact stream differs
//! from upstream `rand`, which is fine: every consumer in this workspace
//! only relies on determinism and uniformity, never on a specific stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators. Only the `seed_from_u64` entry point is provided;
/// the workspace never seeds from byte arrays.
pub trait SeedableRng: Sized {
    /// Deterministically derive a generator state from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the stand-in for sampling from
/// rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, n)` by widening multiply with rejection
/// (Lemire's method): unbiased and branch-light.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (n as u128);
    let mut lo = m as u64;
    if lo < n {
        let threshold = n.wrapping_neg() % n;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128) * (n as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                start + uniform_u64(rng, span) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                let span = span.wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_signed_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// The user-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample_standard(self) < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0
                .wrapping_add(s3)
                .rotate_left(23)
                .wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(1..=3usize);
            assert!((1..=3).contains(&i));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn uniform_int_mean() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 100_000u64;
        let sum: u64 = (0..n).map(|_| r.gen_range(0u64..100)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 49.5).abs() < 0.5, "mean = {mean}");
    }
}
