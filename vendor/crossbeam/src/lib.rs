//! Offline stand-in for the `crossbeam` crate.
//!
//! Wraps `std::thread::scope` and `std::sync::mpsc::sync_channel` behind
//! the two crossbeam entry points this workspace uses: [`scope`] with
//! `Scope::spawn(|_| …)` closures, and [`channel::bounded`]. Semantics
//! match crossbeam where the workspace relies on them: scoped spawns
//! join before `scope` returns, the channel blocks the sender once the
//! bound is reached, and `Receiver::iter` ends when all senders drop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Error payload returned when a scoped thread panics.
pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// A scope handle passed to [`scope`] closures; spawn threads through it.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives a scope reference to
    /// mirror crossbeam's signature (callers here ignore it as `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || {
            f(&Scope { inner })
        })
    }
}

/// Run `f` with a thread scope; all spawned threads are joined before
/// this returns. Returns `Err` with the panic payload if any scoped
/// thread (or `f` itself) panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

/// Multi-producer channels (the `crossbeam-channel` façade).
pub mod channel {
    /// Sending half of a bounded channel.
    pub struct Sender<T> {
        inner: std::sync::mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> Sender<T> {
        /// Send, blocking while the channel is full. Fails only if the
        /// receiving side has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T> {
        inner: std::sync::mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocking iterator over received values; ends when every
        /// sender has been dropped.
        pub fn iter(&self) -> std::sync::mpsc::Iter<'_, T> {
            self.inner.iter()
        }

        /// Receive one value, or `Err` once all senders are dropped.
        pub fn recv(&self) -> Result<T, std::sync::mpsc::RecvError> {
            self.inner.recv()
        }
    }

    /// A bounded FIFO channel holding at most `cap` in-flight values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_pipeline_roundtrip() {
        let (tx, rx) = super::channel::bounded::<u64>(2);
        let total = super::scope(|s| {
            s.spawn(move |_| {
                for i in 0..100u64 {
                    tx.send(i).unwrap();
                }
            });
            rx.iter().sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 4950);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
