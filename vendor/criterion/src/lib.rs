//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the workspace benches use
//! — [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`black_box`],
//! [`Throughput`] and the `criterion_group!`/`criterion_main!` macros —
//! as a real wall-clock harness: each benchmark is warmed up, then timed
//! over `sample_size` samples, and the median/min/max per-iteration times
//! are printed. No statistics beyond that, no HTML reports, no baseline
//! storage; numbers are honest measurements, which is what the
//! serial-vs-parallel speedup acceptance check needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group (recorded, shown per-iter).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine`, recording one duration per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(name: &str, sample_size: usize, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    b.samples.sort();
    let (min, med, max) = match b.samples.len() {
        0 => (Duration::ZERO, Duration::ZERO, Duration::ZERO),
        n => (b.samples[0], b.samples[n / 2], b.samples[n - 1]),
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if med > Duration::ZERO => {
            format!("  ({:.0} elem/s)", n as f64 / med.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if med > Duration::ZERO => {
            format!("  ({:.0} B/s)", n as f64 / med.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "bench {name:<48} [{} {} {}]{rate}",
        fmt_duration(min),
        fmt_duration(med),
        fmt_duration(max)
    );
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, None, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate the group's per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Close the group (no-op beyond matching the criterion API).
    pub fn finish(self) {}
}

/// Define a benchmark group: either `criterion_group!(name, fn_a, fn_b)`
/// or the `name = …; config = …; targets = …` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grouped");
        g.throughput(Throughput::Elements(4));
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0u64..4).sum::<u64>()));
        g.finish();
    }

    criterion_group! {
        name = unit;
        config = Criterion::default().sample_size(2);
        targets = sample_bench
    }

    #[test]
    fn groups_run() {
        unit();
    }

    #[test]
    fn durations_format() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
