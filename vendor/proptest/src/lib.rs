//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses —
//! [`Strategy`], `any`, `Just`, ranges, tuples, `prop_map`,
//! `collection::vec`, `prop_oneof!`, the `proptest!` test macro and the
//! `prop_assert*` family — on top of the vendored deterministic `rand`.
//!
//! Differences from upstream: cases are generated from a seed derived
//! from the test name (fully deterministic across runs) and there is no
//! shrinking — a failing case reports its inputs via the panic message
//! instead. That trade keeps the harness tiny while preserving the
//! property-testing workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert*` failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection with a message.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A generator of random values. No shrinking: `new_value` draws one
/// value from the strategy's distribution.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Box the strategy (for heterogeneous unions).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only: uniform sign/magnitude over a wide span.
        let mag = rng.gen::<f64>() * 1e12;
        if rng.gen::<bool>() {
            mag
        } else {
            -mag
        }
    }
}

/// Strategy for any value of `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);

/// A uniform choice among boxed alternatives (`prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].new_value(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Derive a stable 64-bit seed from a test identifier (FNV-1a).
pub fn seed_for(name: &str, case: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Execute one proptest-style test body over `config.cases` cases.
///
/// `body` receives a fresh deterministic RNG per case and returns
/// `Err(TestCaseError::Fail)` on assertion failure (which panics with the
/// case number) or `Err(TestCaseError::Reject)` to skip the case.
pub fn run_cases(
    name: &str,
    config: &ProptestConfig,
    body: impl Fn(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rejected = 0u64;
    let mut case = 0u64;
    let mut executed = 0u32;
    while executed < config.cases {
        let mut rng = TestRng::seed_from_u64(seed_for(name, case));
        case += 1;
        match body(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < 1024 + 16 * config.cases as u64,
                    "{name}: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case {case} failed: {msg}");
            }
        }
    }
}

/// The `proptest!` macro: wraps each contained `#[test]` function so its
/// body runs over deterministically generated cases. As with upstream
/// proptest, callers write the `#[test]` attribute themselves (the macro
/// re-emits whatever attributes precede the `fn`).
#[macro_export]
macro_rules! proptest {
    // With a leading config attribute.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    // Without one.
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal: expand each `fn name(args in strategies) { body }` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_cases(stringify!($name), &config, |__rng| {
                $(let $pat = $crate::Strategy::new_value(&($strat), __rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

/// Assert a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}: {}",
                left, right, format!($($fmt)*)
            )));
        }
    }};
}

/// Reject the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategy alternatives with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 5u64..10, y in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn maps_apply(v in (0u32..4).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0 && v < 8, "v = {v}");
        }

        #[test]
        fn assume_skips(x in 0u8..8) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn oneof_and_vec(xs in crate::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 1..20)) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.iter().all(|&x| x == 1 || x == 2));
        }
    }

    #[test]
    fn deterministic_seeds() {
        assert_eq!(super::seed_for("a", 0), super::seed_for("a", 0));
        assert_ne!(super::seed_for("a", 0), super::seed_for("b", 0));
    }
}
