//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly (a poisoned std lock is recovered
//! rather than propagated, matching parking_lot's "no poisoning"
//! semantics as far as callers can observe).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquire methods never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T> RwLock<T> {
    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
